// Snapshot parity: the prefix-replay fast path must be invisible in the
// results. Every assertion here compares --snapshots on/auto against the
// from-scratch off path — per-point outcome counts, journal resume, the
// parallel executor — plus the golden-run memo and its invalidation.

#include <gtest/gtest.h>

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/campaign.hpp"
#include "support/error.hpp"

namespace fastfit::core {
namespace {

CampaignOptions base_options(SnapshotMode mode) {
  CampaignOptions opts;
  opts.nranks = 8;
  opts.trials_per_point = 3;
  opts.seed = 4242;
  opts.max_parallel_trials = 1;
  opts.snapshots = mode;
  return opts;
}

// Measures the first `npoints` enumerated points and returns the
// results; `stats_out` receives the campaign's snapshot statistics.
std::vector<PointResult> run_study(const apps::Workload& workload,
                                   const CampaignOptions& opts,
                                   std::size_t npoints,
                                   SnapshotCache::Stats* stats_out = nullptr) {
  Campaign campaign(workload, opts);
  campaign.profile();
  const auto& points = campaign.enumeration().points;
  const auto n = std::min(npoints, points.size());
  const auto results = campaign.measure_many(
      std::span<const InjectionPoint>(points.data(), n), opts.trials_per_point);
  if (stats_out != nullptr) *stats_out = campaign.snapshot_stats();
  EXPECT_TRUE(campaign.health().clean());
  return results;
}

void expect_same_counts(const std::vector<PointResult>& a,
                        const std::vector<PointResult>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].counts, b[i].counts) << label << " point " << i;
    EXPECT_EQ(a[i].trials, b[i].trials) << label << " point " << i;
    EXPECT_EQ(a[i].exec.quarantined, b[i].exec.quarantined)
        << label << " point " << i;
  }
}

TEST(SnapshotParity, ReplayMatchesFromScratchForEveryWorkload) {
  for (const auto& name : apps::workload_names()) {
    const auto workload = apps::make_workload(name);
    const auto off =
        run_study(*workload, base_options(SnapshotMode::Off), 2);
    SnapshotCache::Stats stats;
    const auto on =
        run_study(*workload, base_options(SnapshotMode::On), 2, &stats);
    expect_same_counts(off, on, name);
    // The fast path must actually have engaged: one recording, one
    // snapshot per distinct cut, trials served as clones.
    EXPECT_EQ(stats.recording_builds, 1u) << name;
    EXPECT_GT(stats.clones, 0u) << name;
    EXPECT_EQ(stats.fallbacks, 0u) << name;
  }
}

TEST(SnapshotParity, AutoModeMatchesAndReusesTheRecording) {
  const auto workload = apps::make_workload("LU");
  const auto off = run_study(*workload, base_options(SnapshotMode::Off), 4);
  SnapshotCache::Stats stats;
  const auto replayed =
      run_study(*workload, base_options(SnapshotMode::Auto), 4, &stats);
  expect_same_counts(off, replayed, "LU auto");
  EXPECT_EQ(stats.recording_builds, 1u);  // shared across all 4 points
  // 3 trials per point share each point's derived cut (>= because guard
  // retries or watchdog confirmations may re-clone).
  EXPECT_GE(stats.hits, stats.snapshot_builds);
  EXPECT_GE(stats.clones, 4u * 3u);
}

TEST(SnapshotParity, ParallelExecutorMatchesSerialFromScratch) {
  const auto workload = apps::make_workload("CG");
  const auto serial_off =
      run_study(*workload, base_options(SnapshotMode::Off), 3);
  auto parallel = base_options(SnapshotMode::Auto);
  parallel.max_parallel_trials = 4;
  SnapshotCache::Stats stats;
  const auto pooled = run_study(*workload, parallel, 3, &stats);
  expect_same_counts(serial_off, pooled, "CG pool-4");
  EXPECT_EQ(stats.fallbacks, 0u);
}

TEST(SnapshotParity, ResumeFromJournalStaysBitIdentical) {
  const auto workload = apps::make_workload("LU");
  const auto opts = base_options(SnapshotMode::Auto);
  const auto expected =
      run_study(*workload, base_options(SnapshotMode::Off), 4);

  const std::string path =
      ::testing::TempDir() + "fastfit_snapshot_parity_resume";
  std::remove(path.c_str());
  {
    Campaign partial(*workload, opts);
    partial.profile();
    partial.attach_journal(path, JournalMode::Create);
    const auto& points = partial.enumeration().points;
    ASSERT_GE(points.size(), 4u);
    partial.measure_many(
        std::span<const InjectionPoint>(points.data(), 2), 3);
    partial.detach_journal();
  }

  Campaign resumed(*workload, opts);
  resumed.profile();
  resumed.attach_journal(path, JournalMode::Resume);
  const auto& points = resumed.enumeration().points;
  const auto results = resumed.measure_many(
      std::span<const InjectionPoint>(points.data(), 4), 3);
  EXPECT_GT(resumed.health().replayed_trials, 0u);
  expect_same_counts(expected, results, "LU resume");
}

TEST(SnapshotParity, GoldenRunIsMemoizedAcrossCampaigns) {
  GoldenCache::instance().clear();
  const auto workload = apps::make_workload("EP");
  const auto opts = base_options(SnapshotMode::Off);

  Campaign first(*workload, opts);
  first.profile();
  EXPECT_EQ(GoldenCache::instance().size(), 1u);
  const auto digest = first.golden_digest();

  // Same configuration: the second campaign's profile() serves the
  // golden run from the memo (still exactly one entry) and agrees on
  // the digest the whole classification hangs off.
  Campaign second(*workload, opts);
  second.profile();
  EXPECT_EQ(GoldenCache::instance().size(), 1u);
  EXPECT_EQ(second.golden_digest(), digest);

  // A different seed is a different key — no false sharing.
  auto other = opts;
  other.seed = opts.seed + 1;
  Campaign third(*workload, other);
  third.profile();
  EXPECT_EQ(GoldenCache::instance().size(), 2u);
}

TEST(SnapshotParity, GoldenCacheInvalidationForcesRemeasure) {
  GoldenCache& cache = GoldenCache::instance();
  cache.clear();
  cache.put("k", {0xabcd, std::chrono::milliseconds(120)});
  const auto hit = cache.find("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->digest, 0xabcdu);
  EXPECT_EQ(hit->wall.count(), 120);
  // The watchdog-recalibration hook: invalidate, then the next
  // run_golden misses and re-measures.
  cache.invalidate("k");
  EXPECT_FALSE(cache.find("k").has_value());
  cache.invalidate("k");  // idempotent
  cache.clear();
}

TEST(SnapshotParity, CacheBudgetMustBePositive) {
  const auto workload = apps::make_workload("LU");
  auto opts = base_options(SnapshotMode::Auto);
  opts.snapshot_cache_mb = 0;
  EXPECT_THROW(Campaign c(*workload, opts), ConfigError);
}

}  // namespace
}  // namespace fastfit::core

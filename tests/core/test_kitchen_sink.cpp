// Robustness sweep over the full collective surface: a synthetic workload
// that calls every MiniMPI collective, then a campaign that injects into
// every surviving (point, parameter). Whatever the corruption does, the
// trial must classify into the Table-I taxonomy — never escape as an
// unhandled exception, never hang the harness, never touch memory outside
// the registries.

#include <gtest/gtest.h>

#include <numeric>

#include "apps/common.hpp"
#include "apps/workload.hpp"
#include "core/campaign.hpp"

namespace fastfit::core {
namespace {

class KitchenSink final : public apps::Workload {
 public:
  std::string name() const override { return "kitchen-sink"; }

  std::uint64_t run_rank(apps::AppContext& ctx) const override {
    auto& mpi = ctx.mpi;
    auto& tr = ctx.trace;
    const int n = mpi.size();
    const int me = mpi.rank();

    tr.set_phase(trace::ExecPhase::Init);
    {
      trace::FunctionScope scope(tr, "setup");
      mpi.barrier();
      mpi::RegisteredBuffer<std::int32_t> params(mpi.registry(), 2);
      if (me == 0) {
        params[0] = 4;
        params[1] = 99;
      }
      mpi.bcast(params.data(), 2, mpi::kInt32, 0);
      trace::ErrorHandlingScope errhal(tr);
      apps::app_check(params[0] == 4 && params[1] == 99,
                      "kitchen-sink: setup broadcast corrupted");
    }

    tr.set_phase(trace::ExecPhase::Compute);
    std::uint64_t digest = 0;
    {
      trace::FunctionScope scope(tr, "exercise_everything");
      const std::size_t N = static_cast<std::size_t>(n);

      mpi::RegisteredBuffer<double> vec(mpi.registry(), 4, me + 1.0);
      mpi::RegisteredBuffer<double> summed(mpi.registry(), 4);
      mpi.allreduce(vec.data(), summed.data(), 4, mpi::kDouble, mpi::kSum);

      mpi::RegisteredBuffer<double> reduced(mpi.registry(), 4);
      mpi.reduce(vec.data(), reduced.data(), 4, mpi::kDouble, mpi::kMax,
                 n - 1);

      mpi::RegisteredBuffer<std::int32_t> table(mpi.registry(), 2 * N);
      mpi::RegisteredBuffer<std::int32_t> mine(mpi.registry(), 2);
      if (me == 0) std::iota(table.begin(), table.end(), 0);
      mpi.scatter(table.data(), 2, mpi::kInt32, mine.data(), 2, mpi::kInt32,
                  0);
      mpi.gather(mine.data(), 2, mpi::kInt32, table.data(), 2, mpi::kInt32,
                 0);

      mpi::RegisteredBuffer<std::int32_t> shared(mpi.registry(), N);
      mpi::RegisteredBuffer<std::int32_t> contribution(mpi.registry(), 1, me);
      mpi.allgather(contribution.data(), 1, mpi::kInt32, shared.data(), 1,
                    mpi::kInt32);

      mpi::RegisteredBuffer<std::int32_t> a2a_in(mpi.registry(), N, me);
      mpi::RegisteredBuffer<std::int32_t> a2a_out(mpi.registry(), N);
      mpi.alltoall(a2a_in.data(), 1, mpi::kInt32, a2a_out.data(), 1,
                   mpi::kInt32);

      std::vector<std::int32_t> ones(N, 1);
      std::vector<std::int32_t> steps(N);
      std::iota(steps.begin(), steps.end(), 0);
      mpi::RegisteredBuffer<std::int32_t> v_out(mpi.registry(), N);
      mpi.alltoallv(a2a_in.data(), ones, steps, mpi::kInt32, v_out.data(),
                    ones, steps, mpi::kInt32);

      mpi::RegisteredBuffer<std::int32_t> sv_out(mpi.registry(), 1);
      mpi.scatterv(table.data(), ones, steps, mpi::kInt32, sv_out.data(), 1,
                   mpi::kInt32, 0);
      mpi.gatherv(sv_out.data(), 1, mpi::kInt32, table.data(), ones, steps,
                  mpi::kInt32, 0);
      mpi.allgatherv(contribution.data(), 1, mpi::kInt32, shared.data(),
                     ones, steps, mpi::kInt32);

      mpi::RegisteredBuffer<std::int64_t> rs_in(mpi.registry(), N, 1);
      mpi::RegisteredBuffer<std::int64_t> rs_out(mpi.registry(), 1);
      mpi.reduce_scatter_block(rs_in.data(), rs_out.data(), 1, mpi::kInt64,
                               mpi::kSum);

      mpi::RegisteredBuffer<std::int64_t> prefix(mpi.registry(), 1);
      mpi::RegisteredBuffer<std::int64_t> one(mpi.registry(), 1, 1);
      mpi.scan(one.data(), prefix.data(), 1, mpi::kInt64, mpi::kSum);

      digest = static_cast<std::uint64_t>(summed[0] * 1e6) ^
               static_cast<std::uint64_t>(rs_out[0]) ^
               static_cast<std::uint64_t>(prefix[0] << 7) ^
               static_cast<std::uint64_t>(
                   shared[static_cast<std::size_t>(me)]);
    }

    tr.set_phase(trace::ExecPhase::End);
    mpi.barrier();
    return digest;
  }
};

TEST(KitchenSink, GoldenRunIsClean) {
  KitchenSink workload;
  CampaignOptions options;
  options.nranks = 6;
  options.trials_per_point = 1;
  Campaign campaign(workload, options);
  campaign.profile();
  EXPECT_NE(campaign.golden_digest(), 0u);
  // All fourteen collective kinds appear among the points.
  std::set<mpi::CollectiveKind> kinds;
  for (const auto& p : campaign.enumeration().points) kinds.insert(p.kind);
  EXPECT_EQ(kinds.size(), static_cast<std::size_t>(mpi::kNumCollectiveKinds));
}

TEST(KitchenSink, EveryPointSurvivesInjectionWithoutEscapes) {
  // The harness-robustness sweep: 3 trials into every (site, stack,
  // parameter) of every collective kind. ~hundreds of faulted executions;
  // any unclassified failure surfaces as a thrown exception and fails the
  // test.
  KitchenSink workload;
  CampaignOptions options;
  options.nranks = 6;
  options.trials_per_point = 3;
  options.seed = 20260707;
  Campaign campaign(workload, options);
  campaign.profile();
  std::array<std::uint64_t, inject::kNumOutcomes> totals{};
  for (const auto& point : campaign.enumeration().points) {
    const auto result = campaign.measure(point);
    EXPECT_EQ(result.trials, 3u)
        << "point " << point_key(point)
        << " quarantined: " << result.exec.last_error;
    for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
      totals[o] += result.counts[o];
    }
  }
  // The sweep must produce a spread of responses, not a single class.
  EXPECT_GT(totals[static_cast<std::size_t>(inject::Outcome::Success)], 0u);
  EXPECT_GT(totals[static_cast<std::size_t>(inject::Outcome::MpiErr)], 0u);
  EXPECT_GT(totals[static_cast<std::size_t>(inject::Outcome::SegFault)], 0u);
}

TEST(KitchenSink, SemanticOnlyEnumerationIsDenser) {
  KitchenSink workload;
  CampaignOptions options;
  options.nranks = 6;
  options.trials_per_point = 1;
  Campaign campaign(workload, options);
  campaign.profile();
  const auto dense = enumerate_points_semantic_only(campaign.profiler());
  EXPECT_GE(dense.points.size(), campaign.enumeration().points.size());
  EXPECT_EQ(dense.stats.after_semantic, dense.stats.after_context);
}

}  // namespace
}  // namespace fastfit::core

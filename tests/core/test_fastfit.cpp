// End-to-end FastFIT integration: the three-phase study on real workloads.

#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "core/fastfit.hpp"
#include "core/report.hpp"

namespace fastfit::core {
namespace {

FastFitOptions small_study() {
  FastFitOptions opts;
  opts.campaign.nranks = 8;
  opts.campaign.trials_per_point = 5;
  opts.campaign.seed = 4242;
  opts.ml.accuracy_threshold = 0.5;
  opts.ml.train_batch = 6;
  opts.ml.verify_batch = 4;
  opts.ml.forest.n_trees = 12;
  return opts;
}

TEST(FastFit, FullStudyOnMiniMD) {
  const auto workload = apps::make_workload("miniMD");
  FastFit study(*workload, small_study());
  const auto result = study.run();

  // Structural pruning must be substantial (the paper's headline claim).
  EXPECT_GT(result.stats.structural_reduction(), 0.85);
  EXPECT_GT(result.total_reduction(), 0.9);
  EXPECT_FALSE(result.measured.empty());
  // Every point is either measured or predicted.
  EXPECT_EQ(result.measured.size() + result.predicted.size(),
            result.stats.after_context);
  // The report layer can digest the study.
  const auto dist = outcome_distribution(result.measured);
  double sum = 0.0;
  for (double v : dist) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FastFit, TraditionalModeMeasuresEverything) {
  auto opts = small_study();
  opts.use_ml = false;
  opts.campaign.trials_per_point = 2;
  const auto workload = apps::make_workload("LU");
  FastFit study(*workload, opts);
  const auto result = study.run();
  EXPECT_TRUE(result.predicted.empty());
  EXPECT_EQ(result.measured.size(), result.stats.after_context);
  EXPECT_EQ(result.ml_reduction, 0.0);
}

TEST(FastFit, SingleUse) {
  const auto workload = apps::make_workload("LU");
  auto opts = small_study();
  opts.use_ml = false;
  opts.campaign.trials_per_point = 1;
  FastFit study(*workload, opts);
  study.run();
  EXPECT_THROW(study.run(), InternalError);
}

TEST(FastFit, CampaignBeforeRunThrowsInsteadOfHandingOutAnUnprofiledEngine) {
  // Regression: campaign() used to return the unprofiled engine, whose
  // every accessor (stats, enumeration, golden digest) then failed from
  // deeper, more confusing places.
  const auto workload = apps::make_workload("LU");
  auto opts = small_study();
  opts.use_ml = false;
  opts.campaign.trials_per_point = 1;
  FastFit study(*workload, opts);
  EXPECT_THROW(study.campaign(), InternalError);
  const FastFit& const_study = study;
  EXPECT_THROW(const_study.campaign(), InternalError);
  study.run();
  EXPECT_NO_THROW(study.campaign().stats());
  EXPECT_NO_THROW(const_study.campaign().golden_digest());
}

TEST(FastFit, StudyIsReproducible) {
  const auto workload = apps::make_workload("LU");
  auto opts = small_study();
  opts.campaign.trials_per_point = 3;
  FastFit s1(*workload, opts);
  FastFit s2(*workload, opts);
  const auto r1 = s1.run();
  const auto r2 = s2.run();
  ASSERT_EQ(r1.measured.size(), r2.measured.size());
  for (std::size_t i = 0; i < r1.measured.size(); ++i) {
    EXPECT_EQ(r1.measured[i].counts, r2.measured[i].counts);
    EXPECT_EQ(r1.measured[i].point.site_id, r2.measured[i].point.site_id);
  }
  ASSERT_EQ(r1.predicted.size(), r2.predicted.size());
  for (std::size_t i = 0; i < r1.predicted.size(); ++i) {
    EXPECT_EQ(r1.predicted[i].second, r2.predicted[i].second);
  }
}

TEST(FastFit, BarrierFaultsAreSevere) {
  // Paper Figs 8/11: faulty MPI_Barrier has a lethal effect. A corrupted
  // communicator handle on a barrier is either MPI_ERR (invalid handle) or
  // INF_LOOP (valid-but-wrong communicator): never harmless.
  const auto workload = apps::make_workload("MG");
  auto opts = small_study();
  opts.use_ml = false;
  opts.campaign.trials_per_point = 8;
  FastFit study(*workload, opts);
  const auto result = study.run();
  bool found = false;
  for (const auto& r : result.measured) {
    if (r.point.kind != mpi::CollectiveKind::Barrier) continue;
    found = true;
    EXPECT_GT(r.error_rate(), 0.5) << "barrier faults should be severe";
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace fastfit::core

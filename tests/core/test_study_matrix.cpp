// Cross-product integration sweep: small but complete studies across
// (workload x fault model), asserting the structural invariants that
// every campaign must satisfy regardless of configuration.

#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "core/fastfit.hpp"
#include "core/report.hpp"

namespace fastfit::core {
namespace {

class StudyMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {
};

TEST_P(StudyMatrix, InvariantsHold) {
  const auto& [workload_name, model_index] = GetParam();
  const auto workload = apps::make_workload(workload_name);

  FastFitOptions options;
  options.campaign.nranks = 8;
  options.campaign.trials_per_point = 2;
  options.campaign.seed = 777 + model_index;
  options.campaign.fault_models = {
      inject::FaultModelSpec{static_cast<inject::FaultModel>(model_index)}};
  options.use_ml = false;  // measure everything: strongest invariants

  FastFit study(*workload, options);
  const auto result = study.run();

  // Structure: counts are monotone, every point measured exactly once.
  const auto& s = result.stats;
  EXPECT_GT(s.total_points, 0u);
  EXPECT_LE(s.after_semantic, s.total_points);
  EXPECT_LE(s.after_context, s.after_semantic);
  EXPECT_EQ(result.measured.size(), s.after_context);
  EXPECT_TRUE(result.predicted.empty());

  // Per point: trials add up; fractions form a distribution.
  for (const auto& r : result.measured) {
    EXPECT_EQ(r.trials, 2u);
    std::uint32_t total = 0;
    for (auto c : r.counts) total += c;
    EXPECT_EQ(total, r.trials);
    EXPECT_GE(r.error_rate(), 0.0);
    EXPECT_LE(r.error_rate(), 1.0);
  }

  // Aggregates: the outcome distribution sums to 1.
  const auto dist = outcome_distribution(result.measured);
  double sum = 0.0;
  for (double v : dist) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);

  // Reductions: bounded and consistent.
  EXPECT_GE(s.semantic_reduction(), 0.0);
  EXPECT_LE(s.structural_reduction(), 1.0);
  EXPECT_DOUBLE_EQ(result.total_reduction(), s.structural_reduction());
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsByFaultModel, StudyMatrix,
    // The parameter-mutation models (0-4); message/fail-stop models have
    // dedicated campaign suites (test_failstop_campaign).
    ::testing::Combine(::testing::Values("FT", "LU", "CG", "EP"),
                       ::testing::Values(0u, 1u, 2u, 3u, 4u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_model" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace fastfit::core

// StudyDriver orchestration: pass-chain validation, deterministic
// sharding, fragment export, and the `fastfit merge` reassembly that
// must be bit-identical to the unsharded run.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/export.hpp"
#include "core/shard.hpp"
#include "core/study.hpp"

namespace fastfit::core {
namespace {

StudyOptions small_study(int nranks = 8, std::uint32_t trials = 3) {
  StudyOptions opts;
  opts.campaign.nranks = nranks;
  opts.campaign.trials_per_point = trials;
  opts.campaign.seed = 20260805;
  opts.use_ml = false;
  return opts;
}

TEST(Shard, ParseAcceptsWellFormedSpecs) {
  EXPECT_EQ(parse_shard("1/1"), (ShardSpec{1, 1}));
  EXPECT_EQ(parse_shard("3/4"), (ShardSpec{3, 4}));
  EXPECT_EQ(parse_shard("4/4"), (ShardSpec{4, 4}));
  EXPECT_EQ(parse_shard("2/2").str(), "2/2");
}

TEST(Shard, ParseRejectsMalformedSpecs) {
  for (const char* bad :
       {"", "1", "/", "1/", "/4", "0/4", "5/4", "x/4", "1/y", "1/0",
        "1/4/2", "-1/4", "1 /4"}) {
    EXPECT_THROW(parse_shard(bad), ConfigError) << "'" << bad << "'";
  }
}

TEST(Shard, PartitionIsADisjointCover) {
  // Every post-pruning point lands in exactly one shard, for any N.
  const auto workload = apps::make_workload("LU");
  StudyDriver driver(*workload, small_study());
  driver.profile();
  const auto& points = driver.campaign().enumeration().points;
  ASSERT_FALSE(points.empty());
  for (std::size_t count : {2u, 3u, 5u}) {
    for (const auto& point : points) {
      std::size_t owners = 0;
      for (std::size_t index = 1; index <= count; ++index) {
        if (shard_owns(ShardSpec{index, count}, point)) ++owners;
      }
      EXPECT_EQ(owners, 1u) << "count=" << count;
    }
  }
}

TEST(Shard, UnshardedSpecOwnsEverything) {
  const auto workload = apps::make_workload("EP");
  StudyDriver driver(*workload, small_study());
  driver.profile();
  for (const auto& point : driver.campaign().enumeration().points) {
    EXPECT_TRUE(shard_owns(ShardSpec{}, point));
  }
}

TEST(StudyDriver, CampaignAccessorRequiresProfileOrRun) {
  const auto workload = apps::make_workload("EP");
  StudyDriver driver(*workload, small_study());
  EXPECT_THROW(driver.campaign(), InternalError);
  driver.profile();
  EXPECT_NO_THROW(driver.campaign().stats());
  driver.profile();  // idempotent
  const auto result = driver.run();  // profiles only once
  EXPECT_EQ(result.measured.size(), result.stats.after_context);
}

TEST(StudyDriver, MlStageRefusesSharding) {
  const auto workload = apps::make_workload("EP");
  auto opts = small_study();
  opts.use_ml = true;
  opts.campaign.shard = ShardSpec{1, 2};
  EXPECT_THROW(StudyDriver(*workload, opts), ConfigError);
}

TEST(StudyDriver, MlPassMustBeLastInTheChain) {
  const auto workload = apps::make_workload("EP");
  auto opts = small_study();
  opts.use_ml = true;
  opts.passes = {"semantic", "ml", "context"};
  EXPECT_THROW(StudyDriver(*workload, opts), ConfigError);
}

TEST(StudyDriver, MlPassWithMlDisabledIsAContradiction) {
  const auto workload = apps::make_workload("EP");
  auto opts = small_study();
  opts.use_ml = false;
  opts.passes = {"semantic", "context", "ml"};
  EXPECT_THROW(StudyDriver(*workload, opts), ConfigError);
}

TEST(StudyDriver, ExplicitStructuralChainRuns) {
  const auto workload = apps::make_workload("EP");
  auto opts = small_study(8, 2);
  opts.passes = {"context", "semantic"};
  StudyDriver driver(*workload, opts);
  const auto result = driver.run();
  EXPECT_EQ(result.measured.size(), result.stats.after_context);
  EXPECT_TRUE(result.predicted.empty());
}

TEST(StudyDriver, ShardedFragmentsMergeBitIdenticalToUnshardedRun) {
  // The tentpole acceptance check, in-process: shard EP 2 ways, merge
  // the fragments, and require the exact JSON report of the unsharded
  // study — same points, same per-trial outcomes, same health.
  const auto workload = apps::make_workload("EP");
  StudyDriver unsharded(*workload, small_study());
  const auto want = unsharded.run();

  std::vector<std::string> fragments;
  std::set<std::size_t> seen_ordinals;
  std::size_t measured_total = 0;
  for (std::size_t index = 1; index <= 2; ++index) {
    auto opts = small_study();
    opts.campaign.shard = ShardSpec{index, 2};
    StudyDriver driver(*workload, opts);
    const auto part = driver.run();
    EXPECT_EQ(part.shard, (ShardSpec{index, 2}));
    EXPECT_EQ(part.stats, want.stats);
    EXPECT_EQ(part.golden_digest, want.golden_digest);
    EXPECT_EQ(part.shard_ordinals.size(), part.measured.size());
    for (const auto ordinal : part.shard_ordinals) {
      EXPECT_TRUE(seen_ordinals.insert(ordinal).second);
    }
    measured_total += part.measured.size();
    fragments.push_back(to_shard_fragment(part));
  }
  EXPECT_EQ(measured_total, want.measured.size());

  const auto merged = merge_fragments(fragments);
  EXPECT_EQ(to_json(merged), to_json(want));
  EXPECT_EQ(merged.shard, (ShardSpec{1, 1}));
  EXPECT_EQ(merged.golden_digest, want.golden_digest);
  EXPECT_EQ(merged.health.total_retries, want.health.total_retries);
  EXPECT_EQ(merged.health.quarantined_points,
            want.health.quarantined_points);
}

TEST(StudyDriver, MergeOrderDoesNotMatter) {
  const auto workload = apps::make_workload("EP");
  std::vector<std::string> fragments;
  for (std::size_t index : {2u, 1u}) {  // reversed on purpose
    auto opts = small_study();
    opts.campaign.shard = ShardSpec{index, 2};
    StudyDriver driver(*workload, opts);
    fragments.push_back(to_shard_fragment(driver.run()));
  }
  StudyDriver unsharded(*workload, small_study());
  EXPECT_EQ(to_json(merge_fragments(fragments)),
            to_json(unsharded.run()));
}

TEST(Fragment, UnshardedResultRoundTripsThroughASingleFragment) {
  const auto workload = apps::make_workload("EP");
  StudyDriver driver(*workload, small_study());
  const auto want = driver.run();
  const auto merged = merge_fragments({to_shard_fragment(want)});
  EXPECT_EQ(to_json(merged), to_json(want));
}

TEST(Fragment, MergeRejectsIncompleteAndInconsistentSets) {
  const auto workload = apps::make_workload("EP");
  auto make_fragment = [&](std::size_t index, std::size_t count) {
    auto opts = small_study();
    opts.campaign.shard = ShardSpec{index, count};
    StudyDriver driver(*workload, opts);
    return to_shard_fragment(driver.run());
  };
  const auto one_of_two = make_fragment(1, 2);
  const auto two_of_two = make_fragment(2, 2);

  // Missing shard.
  EXPECT_THROW(merge_fragments({one_of_two}), ConfigError);
  // Duplicate shard.
  EXPECT_THROW(merge_fragments({one_of_two, one_of_two}), ConfigError);
  // Fragments from a study with a different shard count.
  EXPECT_THROW(merge_fragments({one_of_two, make_fragment(2, 3)}),
               ConfigError);
  // Garbage input.
  EXPECT_THROW(merge_fragments({"not a fragment"}), ConfigError);
  EXPECT_THROW(merge_fragments({}), ConfigError);
  // Sanity: the well-formed pair still merges.
  EXPECT_NO_THROW(merge_fragments({one_of_two, two_of_two}));
}

TEST(Journal, HeaderPinsTheShard) {
  // A shard's journal belongs to that shard: resuming it from a
  // different shard of the study must be refused.
  const auto workload = apps::make_workload("EP");
  const std::string path =
      testing::TempDir() + "/shard_journal_test.jsonl";
  std::remove(path.c_str());
  {
    auto opts = small_study();
    opts.campaign.shard = ShardSpec{1, 2};
    opts.journal = path;
    StudyDriver driver(*workload, opts);
    driver.run();
  }
  {
    auto opts = small_study();
    opts.campaign.shard = ShardSpec{2, 2};
    opts.journal = path;
    opts.resume = true;
    StudyDriver driver(*workload, opts);
    EXPECT_THROW(driver.run(), ConfigError);
  }
  {
    // The matching shard resumes cleanly and replays every trial.
    auto opts = small_study();
    opts.campaign.shard = ShardSpec{1, 2};
    opts.journal = path;
    opts.resume = true;
    StudyDriver driver(*workload, opts);
    const auto result = driver.run();
    EXPECT_GT(result.health.replayed_trials, 0u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fastfit::core

// Process-isolated trial execution: the fork-server pool (core/procpool)
// and its campaign integration behind --isolation process.
//
// Unit tests drive ProcPool directly with synthetic trial functions
// (echo, contained error, raise(signo), sleep) to pin the wire protocol,
// the death taxonomy (SignalDeath / LeaseExpired / LaneFailure), lane
// respawn, and the degradation ladder. Campaign-level tests require the
// process backend to be byte-identical to the thread backend for
// non-signal fault models (serial, pooled, and journal resume) and to
// classify genuine worker signal deaths as SEG_FAULT — with the signal
// number and rusage in the journal's forensic field — without losing the
// campaign.
//
// Fixture names deliberately avoid the CI sanitizer-job regexes: these
// suites fork, which is the address-sanitizer job's surface (ProcPool|
// ProcessIsolation there), not the thread-sanitizer job's.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "apps/registry.hpp"
#include "core/campaign.hpp"
#include "core/procpool.hpp"
#include "inject/fault_model.hpp"
#include "inject/outcome.hpp"

namespace fastfit::core {
namespace {

using procpool::TrialReply;
using procpool::WorkItem;

constexpr auto kSegFault = static_cast<std::size_t>(inject::Outcome::SegFault);

WorkItem sample_item() {
  WorkItem item;
  item.site_id = 42;
  item.rank = -3;  // negative ranks must survive the wire encoding
  item.invocation = 7;
  item.param = 2;
  item.fault = inject::FaultModelSpec::parse("single-bit-flip@prob=0.25");
  item.trial = 11;
  item.watchdog_ms = 1234;
  return item;
}

// ---------------------------------------------------------------------------
// ProcPool unit tests: synthetic trial functions, no campaign involved.
// ---------------------------------------------------------------------------

TEST(ProcPool, CompletedReplyRoundTripsEveryField) {
  ProcPool::Options opts;
  opts.lanes = 1;
  // The child echoes the decoded work item back through the autopsy, so
  // this also pins the WorkItem wire encoding end to end.
  ProcPool pool(opts, [](const WorkItem& item) {
    TrialReply reply;
    reply.ok = true;
    reply.outcome = inject::Outcome::WrongAns;
    reply.deterministic_hang = true;
    reply.leaked_threads = 3;
    std::ostringstream echo;
    echo << item.site_id << '/' << item.rank << '/' << item.invocation << '/'
         << static_cast<int>(item.param) << '/' << item.fault.canonical()
         << '/' << item.trial << '/' << item.watchdog_ms;
    reply.autopsy = echo.str();
    return reply;
  });

  const auto result = pool.run(sample_item(), std::chrono::seconds(30));
  ASSERT_EQ(result.kind, ProcPool::Result::Kind::Completed);
  EXPECT_TRUE(result.reply.ok);
  EXPECT_EQ(result.reply.outcome, inject::Outcome::WrongAns);
  EXPECT_TRUE(result.reply.deterministic_hang);
  EXPECT_EQ(result.reply.leaked_threads, 3u);
  EXPECT_EQ(result.reply.autopsy, "42/-3/7/2/single-bit-flip@prob=0.25/11/1234");
  EXPECT_EQ(pool.stats().trials_dispatched, 1u);
  EXPECT_EQ(pool.stats().signal_deaths, 0u);
}

TEST(ProcPool, ContainedErrorTravelsThroughReply) {
  ProcPool::Options opts;
  opts.lanes = 1;
  ProcPool pool(opts, [](const WorkItem&) {
    TrialReply reply;
    reply.ok = false;
    reply.error = "synthetic contained failure";
    return reply;
  });
  const auto result = pool.run(sample_item(), std::chrono::seconds(30));
  ASSERT_EQ(result.kind, ProcPool::Result::Kind::Completed);
  EXPECT_FALSE(result.reply.ok);
  EXPECT_EQ(result.reply.error, "synthetic contained failure");
}

TEST(ProcPool, SignalMatrixReportsSignalDeathWithRusage) {
  // One pool, four trials, each raising a different genuine signal in the
  // trial child; the supervisor must survive all of them and report the
  // exact signal number.
  ProcPool::Options opts;
  opts.lanes = 1;
  ProcPool pool(opts, [](const WorkItem& item) {
    std::raise(static_cast<int>(item.site_id));
    TrialReply reply;  // unreachable: the raise kills this child
    reply.ok = false;
    reply.error = "survived raise";
    return reply;
  });

  for (const int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
    WorkItem item = sample_item();
    item.site_id = static_cast<std::uint32_t>(signo);
    const auto result = pool.run(item, std::chrono::seconds(30));
    ASSERT_EQ(result.kind, ProcPool::Result::Kind::SignalDeath)
        << "signal " << signo;
    EXPECT_EQ(result.signal, signo);
  }
  EXPECT_EQ(pool.stats().signal_deaths, 4u);
  // A signal death is a datum, not a lane loss: the server survives, so
  // no respawns were needed.
  EXPECT_EQ(pool.stats().respawns, 0u);
  EXPECT_FALSE(pool.degraded());
}

TEST(ProcPool, LeaseExpiryKillsLaneAndRespawns) {
  ProcPool::Options opts;
  opts.lanes = 1;
  opts.respawn_budget = 2;
  ProcPool pool(opts, [](const WorkItem& item) {
    if (item.trial == 999) {  // the wedged trial: sleep past any lease
      std::this_thread::sleep_for(std::chrono::seconds(60));
    }
    TrialReply reply;
    reply.ok = true;
    reply.outcome = inject::Outcome::Success;
    return reply;
  });

  WorkItem wedged = sample_item();
  wedged.trial = 999;
  const auto expired = pool.run(wedged, std::chrono::milliseconds(200));
  ASSERT_EQ(expired.kind, ProcPool::Result::Kind::LeaseExpired);
  EXPECT_NE(expired.error.find("lease"), std::string::npos);
  EXPECT_EQ(pool.stats().lease_kills, 1u);

  // The lane respawns on next use and serves normally.
  const auto after = pool.run(sample_item(), std::chrono::seconds(30));
  ASSERT_EQ(after.kind, ProcPool::Result::Kind::Completed);
  EXPECT_TRUE(after.reply.ok);
  EXPECT_EQ(pool.stats().respawns, 1u);
  EXPECT_FALSE(pool.degraded());
}

TEST(ProcPool, ServerKilledMidTrialIsLaneFailureThenRecovers) {
  ProcPool::Options opts;
  opts.lanes = 1;
  opts.respawn_budget = 2;
  ProcPool pool(opts, [](const WorkItem& item) {
    if (item.trial == 999) {
      std::this_thread::sleep_for(std::chrono::seconds(60));
    }
    TrialReply reply;
    reply.ok = true;
    reply.outcome = inject::Outcome::Success;
    return reply;
  });

  const auto pids = pool.server_pids();
  ASSERT_EQ(pids.size(), 1u);
  ASSERT_GT(pids[0], 0);

  // Kill the fork-server while its trial child is mid-trial (sleeping).
  std::thread killer([pid = pids[0]] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    ::kill(pid, SIGKILL);
  });
  WorkItem wedged = sample_item();
  wedged.trial = 999;
  const auto lost = pool.run(wedged, std::chrono::seconds(30));
  killer.join();
  ASSERT_EQ(lost.kind, ProcPool::Result::Kind::LaneFailure);
  EXPECT_EQ(pool.stats().lane_failures, 1u);

  const auto after = pool.run(sample_item(), std::chrono::seconds(30));
  ASSERT_EQ(after.kind, ProcPool::Result::Kind::Completed);
  EXPECT_TRUE(after.reply.ok);
  EXPECT_EQ(pool.stats().respawns, 1u);
}

TEST(ProcPool, RespawnBudgetExhaustionDegradesPool) {
  ProcPool::Options opts;
  opts.lanes = 1;
  opts.respawn_budget = 0;  // the first lane loss is terminal
  ProcPool pool(opts, [](const WorkItem&) {
    TrialReply reply;
    reply.ok = true;
    reply.outcome = inject::Outcome::Success;
    return reply;
  });
  const auto pids = pool.server_pids();
  ASSERT_EQ(pids.size(), 1u);
  ::kill(pids[0], SIGKILL);

  // First run discovers the dead server (LaneFailure), second finds the
  // lane down with no respawn budget left: the pool declares degraded.
  const auto first = pool.run(sample_item(), std::chrono::seconds(30));
  EXPECT_EQ(first.kind, ProcPool::Result::Kind::LaneFailure);
  const auto second = pool.run(sample_item(), std::chrono::seconds(30));
  ASSERT_EQ(second.kind, ProcPool::Result::Kind::LaneFailure);
  EXPECT_NE(second.error.find("degraded"), std::string::npos);
  EXPECT_TRUE(pool.degraded());
}

TEST(ProcPool, IsolationModeParsesAndRejects) {
  EXPECT_EQ(parse_isolation_mode("thread"), IsolationMode::Thread);
  EXPECT_EQ(parse_isolation_mode("process"), IsolationMode::Process);
  EXPECT_STREQ(to_string(IsolationMode::Thread), "thread");
  EXPECT_STREQ(to_string(IsolationMode::Process), "process");
  EXPECT_THROW(parse_isolation_mode("fork"), ConfigError);
  EXPECT_THROW(parse_isolation_mode(""), ConfigError);
}

TEST(ProcPool, DescribeWorkerDeathNamesSignalAndRusage) {
  const auto text = describe_worker_death(SIGSEGV, 3'000, 1'000, 2048);
  EXPECT_EQ(text,
            "worker killed by SIGSEGV (signal 11); rusage: user=3ms sys=1ms "
            "maxrss=2048KiB");
  EXPECT_NE(describe_worker_death(SIGBUS, 0, 0, 0).find("SIGBUS"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Campaign integration: --isolation process end to end.
// ---------------------------------------------------------------------------

CampaignOptions isolation_options(IsolationMode mode) {
  CampaignOptions opts;
  opts.nranks = 4;
  opts.trials_per_point = 2;
  opts.seed = 20260808;
  opts.max_parallel_trials = 1;
  opts.isolation = mode;
  return opts;
}

std::vector<PointResult> run_points(const apps::Workload& workload,
                                    const CampaignOptions& opts,
                                    std::size_t npoints,
                                    CampaignHealth* health_out = nullptr) {
  Campaign campaign(workload, opts);
  campaign.profile();
  const auto& points = campaign.enumeration().points;
  const auto n = std::min(npoints, points.size());
  auto results = campaign.measure_many(
      std::span<const InjectionPoint>(points.data(), n),
      opts.trials_per_point);
  if (health_out != nullptr) *health_out = campaign.health();
  EXPECT_TRUE(campaign.health().clean());
  return results;
}

void expect_same_counts(const std::vector<PointResult>& a,
                        const std::vector<PointResult>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].counts, b[i].counts) << label << " point " << i;
    EXPECT_EQ(a[i].trials, b[i].trials) << label << " point " << i;
  }
}

TEST(ProcessIsolation, MatchesThreadBackendSerially) {
  const auto workload = apps::make_workload("LU");
  const auto expected =
      run_points(*workload, isolation_options(IsolationMode::Thread), 4);
  CampaignHealth health;
  const auto actual = run_points(
      *workload, isolation_options(IsolationMode::Process), 4, &health);
  expect_same_counts(expected, actual, "process serial");
  // Non-signal models must not lose a single worker.
  EXPECT_EQ(health.worker_deaths, 0u);
  EXPECT_EQ(health.isolation_fallbacks, 0u);
}

TEST(ProcessIsolation, MatchesThreadBackendPooled) {
  const auto workload = apps::make_workload("LU");
  const auto expected =
      run_points(*workload, isolation_options(IsolationMode::Thread), 4);
  auto pooled = isolation_options(IsolationMode::Process);
  pooled.max_parallel_trials = 4;
  expect_same_counts(expected, run_points(*workload, pooled, 4),
                     "process pool-4");
}

TEST(ProcessIsolation, NonParameterModelMatchesAcrossBackends) {
  // Rank death exercises the non-replayable (snapshot-bypassing) trial
  // path inside the worker children.
  const auto workload = apps::make_workload("LU");
  auto thread_opts = isolation_options(IsolationMode::Thread);
  thread_opts.fault_models = {inject::FaultModelSpec::parse("rank-death")};
  const auto expected = run_points(*workload, thread_opts, 3);

  auto process_opts = thread_opts;
  process_opts.isolation = IsolationMode::Process;
  expect_same_counts(expected, run_points(*workload, process_opts, 3),
                     "rank-death process");
}

TEST(CrashResume, ProcessBackendResumesBitIdentical) {
  const auto workload = apps::make_workload("LU");
  const auto opts = isolation_options(IsolationMode::Process);
  // Baseline from the thread backend: resume parity must hold not just
  // run-to-run but across isolation modes.
  const auto expected =
      run_points(*workload, isolation_options(IsolationMode::Thread), 4);

  const std::string path = ::testing::TempDir() + "fastfit_procpool_resume.jsonl";
  std::remove(path.c_str());
  {
    Campaign partial(*workload, opts);
    partial.profile();
    partial.attach_journal(path, JournalMode::Create);
    const auto& points = partial.enumeration().points;
    ASSERT_GE(points.size(), 4u);
    partial.measure_many(std::span<const InjectionPoint>(points.data(), 2),
                         opts.trials_per_point);
    partial.detach_journal();
  }

  Campaign resumed(*workload, opts);
  resumed.profile();
  resumed.attach_journal(path, JournalMode::Resume);
  const auto& points = resumed.enumeration().points;
  const auto results = resumed.measure_many(
      std::span<const InjectionPoint>(points.data(), 4),
      opts.trials_per_point);
  EXPECT_GT(resumed.health().replayed_trials, 0u);
  expect_same_counts(expected, results, "process resume");
  std::remove(path.c_str());
}

TEST(SignalMatrix, GenuineSignalsClassifySegFault) {
  // The real-crash acceptance test: every signal-family fault model kills
  // its worker child with a genuine signal, and every such death must be
  // classified SEG_FAULT without losing the campaign.
  const auto workload = apps::make_workload("EP");
  for (const char* model : {"sigsegv", "sigbus", "sigfpe", "sigabrt"}) {
    auto opts = isolation_options(IsolationMode::Process);
    opts.fault_models = {inject::FaultModelSpec::parse(model)};
    CampaignHealth health;
    const auto results = run_points(*workload, opts, 2, &health);
    ASSERT_FALSE(results.empty()) << model;
    std::uint64_t total = 0;
    for (const auto& r : results) {
      EXPECT_EQ(r.counts[kSegFault], r.trials) << model;
      total += r.trials;
    }
    EXPECT_EQ(health.worker_deaths, total) << model;
    EXPECT_EQ(health.quarantined_points, 0u) << model;
  }
}

TEST(SignalMatrix, JournalCarriesSignalForensics) {
  // The journal's forensic field must name the signal and the child's
  // rusage — that is what makes a real crash diagnosable after the fact.
  const auto workload = apps::make_workload("EP");
  auto opts = isolation_options(IsolationMode::Process);
  opts.fault_models = {inject::FaultModelSpec::parse("sigsegv")};

  const std::string path =
      ::testing::TempDir() + "fastfit_signal_forensics.jsonl";
  std::remove(path.c_str());
  {
    Campaign campaign(*workload, opts);
    campaign.profile();
    campaign.attach_journal(path, JournalMode::Create);
    const auto& points = campaign.enumeration().points;
    ASSERT_FALSE(points.empty());
    campaign.measure_many(std::span<const InjectionPoint>(points.data(), 1),
                          opts.trials_per_point);
    EXPECT_TRUE(campaign.health().clean());
    campaign.detach_journal();
  }
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("worker killed by SIGSEGV (signal 11)"),
            std::string::npos);
  EXPECT_NE(contents.str().find("rusage:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SignalMatrix, SignalModelsRequireProcessIsolation) {
  // In-process, a genuine SIGSEGV would kill the campaign: the engine
  // must refuse the configuration up front, at construction.
  const auto workload = apps::make_workload("EP");
  auto opts = isolation_options(IsolationMode::Thread);
  opts.fault_models = {inject::FaultModelSpec::parse("sigsegv")};
  EXPECT_THROW(Campaign c(*workload, opts), ConfigError);
}

}  // namespace
}  // namespace fastfit::core

// The injection ⇄ learning feedback loop.

#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "core/ml_loop.hpp"

namespace fastfit::core {
namespace {

CampaignOptions small_options() {
  CampaignOptions opts;
  opts.nranks = 8;
  opts.trials_per_point = 5;
  opts.seed = 99;
  return opts;
}

TEST(MlLoop, LabelModes) {
  PointResult r;
  for (int i = 0; i < 7; ++i) r.record(inject::Outcome::MpiErr);
  for (int i = 0; i < 3; ++i) r.record(inject::Outcome::Success);
  EXPECT_EQ(label_of(r, LabelMode::ErrorType, {}),
            static_cast<std::size_t>(inject::Outcome::MpiErr));
  // error rate 0.7 with 4 even levels -> level 2 (50-75%).
  EXPECT_EQ(label_of(r, LabelMode::ErrorRateLevel,
                     stats::even_thresholds(4)),
            2u);
  EXPECT_EQ(label_count(LabelMode::ErrorType, {}), inject::kNumOutcomes);
  EXPECT_EQ(label_count(LabelMode::ErrorRateLevel,
                        stats::even_thresholds(3)),
            3u);
  EXPECT_EQ(label_names(LabelMode::ErrorType, {}).size(),
            inject::kNumOutcomes);
  EXPECT_EQ(label_names(LabelMode::ErrorRateLevel,
                        stats::even_thresholds(2)),
            (std::vector<std::string>{"low", "high"}));
}

TEST(MlLoop, EmptyPointListIsNoOp) {
  const auto workload = apps::make_workload("LU");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  const auto result = run_ml_loop(campaign, {}, MlLoopConfig{});
  EXPECT_TRUE(result.measured.empty());
  EXPECT_TRUE(result.predicted.empty());
  EXPECT_EQ(result.ml_reduction(), 0.0);
}

TEST(MlLoop, LowThresholdPredictsMostPoints) {
  const auto workload = apps::make_workload("miniMD");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  MlLoopConfig config;
  config.accuracy_threshold = 0.30;  // easy to satisfy
  config.train_batch = 6;
  config.verify_batch = 4;
  config.forest.n_trees = 12;
  const auto result =
      run_ml_loop(campaign, campaign.enumeration().points, config);
  EXPECT_TRUE(result.threshold_reached);
  EXPECT_GT(result.predicted.size(), result.measured.size());
  EXPECT_GT(result.ml_reduction(), 0.5);
  EXPECT_TRUE(result.model.has_value());
  // Measured + predicted must cover the whole point list exactly.
  EXPECT_EQ(result.measured.size() + result.predicted.size(),
            campaign.enumeration().points.size());
}

TEST(MlLoop, ImpossibleThresholdDegradesToTraditional) {
  const auto workload = apps::make_workload("LU");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  MlLoopConfig config;
  config.accuracy_threshold = 1.01;  // unreachable by construction
  config.train_batch = 10;
  config.verify_batch = 10;
  config.forest.n_trees = 8;
  const auto result =
      run_ml_loop(campaign, campaign.enumeration().points, config);
  EXPECT_FALSE(result.threshold_reached);
  EXPECT_TRUE(result.predicted.empty());
  EXPECT_EQ(result.measured.size(), campaign.enumeration().points.size());
  EXPECT_EQ(result.ml_reduction(), 0.0);
}

TEST(MlLoop, HigherThresholdNeverMeasuresFewerPoints) {
  // Fig 6's tradeoff: raising the accuracy threshold costs measurements.
  const auto workload = apps::make_workload("miniMD");
  std::vector<std::size_t> measured_counts;
  for (double threshold : {0.30, 0.95}) {
    Campaign campaign(*workload, small_options());
    campaign.profile();
    MlLoopConfig config;
    config.accuracy_threshold = threshold;
    config.train_batch = 6;
    config.verify_batch = 4;
    config.forest.n_trees = 12;
    const auto result =
        run_ml_loop(campaign, campaign.enumeration().points, config);
    measured_counts.push_back(result.measured.size());
  }
  EXPECT_LE(measured_counts[0], measured_counts[1]);
}

TEST(MlLoop, InvalidBatchesRejected) {
  const auto workload = apps::make_workload("LU");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  MlLoopConfig config;
  config.train_batch = 0;
  EXPECT_THROW(run_ml_loop(campaign, campaign.enumeration().points, config),
               ConfigError);
}

}  // namespace
}  // namespace fastfit::core

#include "core/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "apps/registry.hpp"

namespace fastfit::core {
namespace {

PointResult sample_result(const std::string& site, mpi::Param param) {
  PointResult r;
  r.point.site_location = site;
  r.point.kind = mpi::CollectiveKind::Allreduce;
  r.point.param = param;
  r.point.rank = 3;
  r.point.invocation = 7;
  r.point.phase = trace::ExecPhase::Compute;
  r.point.errhal = true;
  r.point.n_inv = 42;
  r.point.stack_depth = 2.5;
  r.point.n_diff_stack = 2;
  r.record(inject::Outcome::Success);
  r.record(inject::Outcome::MpiErr);
  return r;
}

TEST(Export, CsvHasHeaderAndRows) {
  const auto csv = to_csv({sample_result("lu.cpp:10", mpi::Param::SendBuf),
                           sample_result("lu.cpp:20", mpi::Param::Op)});
  std::istringstream in(csv);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("site,kind,param"), std::string::npos);
  EXPECT_NE(header.find("SUCCESS"), std::string::npos);
  EXPECT_NE(header.find("error_rate"), std::string::npos);
  std::string row;
  std::getline(in, row);
  EXPECT_NE(row.find("lu.cpp:10"), std::string::npos);
  EXPECT_NE(row.find("MPI_Allreduce"), std::string::npos);
  EXPECT_NE(row.find("0.5"), std::string::npos);  // error rate 1/2
  int rows = 1;
  while (std::getline(in, row)) {
    if (!row.empty()) ++rows;
  }
  EXPECT_EQ(rows, 2);
}

TEST(Export, CsvQuotesSpecialCharacters) {
  auto r = sample_result("weird,\"site\"", mpi::Param::SendBuf);
  const auto csv = to_csv({r});
  EXPECT_NE(csv.find("\"weird,\"\"site\"\"\""), std::string::npos);
}

TEST(Export, JsonIsStructurallySound) {
  FastFitResult result;
  result.stats.total_points = 100;
  result.stats.after_semantic = 20;
  result.stats.after_context = 10;
  result.stats.equivalence_classes = 2;
  result.stats.nranks = 8;
  result.ml_reduction = 0.5;
  result.final_accuracy = 0.7;
  result.threshold_reached = true;
  result.measured.push_back(sample_result("a.cpp:1", mpi::Param::SendBuf));
  result.predicted.emplace_back(sample_result("b.cpp:2", mpi::Param::Op).point,
                                3u);
  const auto json = to_json(result);
  // Balanced braces/brackets and key fields present.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"afterContext\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"errhal\":true"), std::string::npos);
  EXPECT_NE(json.find("\"label\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"SUCCESS\": 1"), std::string::npos);
}

TEST(Export, JsonEscapesStrings) {
  FastFitResult result;
  auto r = sample_result("path\"with\\quotes", mpi::Param::SendBuf);
  result.measured.push_back(r);
  const auto json = to_json(result);
  EXPECT_NE(json.find("path\\\"with\\\\quotes"), std::string::npos);
}

TEST(Export, ExtendedOutcomeColumnsAreOptIn) {
  // The default configuration keeps the paper's six-way taxonomy on
  // every serialized surface so its output stays byte-identical to
  // pre-v2 builds; extended fault-model studies add the two columns.
  FastFitResult result;
  auto r = sample_result("lu.cpp:10", mpi::Param::SendBuf);
  r.record(inject::Outcome::RankDead);
  result.measured.push_back(r);
  EXPECT_EQ(to_json(result).find("RANK_DEAD"), std::string::npos);
  EXPECT_EQ(to_csv(result.measured).find("RANK_DEAD"), std::string::npos);
  EXPECT_EQ(to_shard_fragment(result).find("outcomes"), std::string::npos);

  result.extended_outcomes = true;
  const auto json = to_json(result);
  EXPECT_NE(json.find("\"RANK_DEAD\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"REPAIRED\": 0"), std::string::npos);
  const auto csv = to_csv(result.measured, true);
  EXPECT_NE(csv.find("RANK_DEAD,REPAIRED"), std::string::npos);
}

TEST(Export, FragmentRoundTripsExtendedOutcomeCounts) {
  StudyResult result;
  auto r = sample_result("lu.cpp:10", mpi::Param::SendBuf);
  r.record(inject::Outcome::RankDead);
  r.record(inject::Outcome::Repaired);
  result.measured.push_back(r);
  result.stats.total_points = 1;
  result.stats.after_semantic = 1;
  result.stats.after_context = 1;
  result.stats.nranks = 8;
  result.extended_outcomes = true;
  const auto fragment = to_shard_fragment(result);
  EXPECT_NE(fragment.find("outcomes 8"), std::string::npos);
  const auto merged = merge_fragments({fragment});
  ASSERT_TRUE(merged.extended_outcomes);
  ASSERT_EQ(merged.measured.size(), 1u);
  EXPECT_EQ(merged.measured[0].counts[static_cast<std::size_t>(
                inject::Outcome::RankDead)],
            1u);
  EXPECT_EQ(merged.measured[0].counts[static_cast<std::size_t>(
                inject::Outcome::Repaired)],
            1u);
  EXPECT_EQ(to_json(merged), to_json(result));
}

TEST(Export, MergeRejectsMixedOutcomeSets) {
  StudyResult result;
  result.measured.push_back(sample_result("lu.cpp:10", mpi::Param::SendBuf));
  result.stats.total_points = 2;
  result.stats.after_semantic = 2;
  result.stats.after_context = 2;
  result.stats.nranks = 8;
  result.shard = ShardSpec{1, 2};
  result.shard_ordinals = {0};
  const auto base = to_shard_fragment(result);
  result.shard = ShardSpec{2, 2};
  result.shard_ordinals = {1};
  result.extended_outcomes = true;
  const auto extended = to_shard_fragment(result);
  EXPECT_THROW(merge_fragments({base, extended}), ConfigError);
}

TEST(Export, WriteFileRoundTrips) {
  const std::string path = "/tmp/fastfit_export_test.csv";
  write_file(path, "hello,world\n");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello,world\n");
  std::remove(path.c_str());
}

TEST(Export, WriteFileFailsLoudly) {
  EXPECT_THROW(write_file("/nonexistent-dir/x.csv", "data"), ConfigError);
}

Enumeration sample_enumeration() {
  Enumeration e;
  e.stats.total_points = 500;
  e.stats.after_semantic = 50;
  e.stats.after_context = 2;
  e.stats.equivalence_classes = 2;
  e.stats.nranks = 8;
  e.classes.push_back(trace::EquivalenceClass{{0}});
  e.classes.push_back(trace::EquivalenceClass{{1, 2, 3, 4, 5, 6, 7}});
  e.points.push_back(sample_result("x.cpp:9", mpi::Param::Count).point);
  auto p2 = sample_result("y.cpp:18", mpi::Param::Op).point;
  p2.kind = mpi::CollectiveKind::Alltoallv;
  p2.phase = trace::ExecPhase::End;
  p2.errhal = false;
  e.points.push_back(p2);
  return e;
}

TEST(Export, EnumerationRoundTrips) {
  const auto original = sample_enumeration();
  const auto restored = enumeration_from_text(to_text(original));
  EXPECT_EQ(restored.stats.total_points, original.stats.total_points);
  EXPECT_EQ(restored.stats.after_context, original.stats.after_context);
  EXPECT_EQ(restored.stats.nranks, original.stats.nranks);
  ASSERT_EQ(restored.classes.size(), 2u);
  EXPECT_EQ(restored.classes[1].ranks, original.classes[1].ranks);
  ASSERT_EQ(restored.points.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& a = original.points[i];
    const auto& b = restored.points[i];
    EXPECT_EQ(a.site_id, b.site_id);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.invocation, b.invocation);
    EXPECT_EQ(a.param, b.param);
    EXPECT_EQ(a.stack, b.stack);
    EXPECT_EQ(a.phase, b.phase);
    EXPECT_EQ(a.errhal, b.errhal);
    EXPECT_EQ(a.n_inv, b.n_inv);
    EXPECT_DOUBLE_EQ(a.stack_depth, b.stack_depth);
    EXPECT_EQ(a.n_diff_stack, b.n_diff_stack);
    EXPECT_EQ(a.site_location, b.site_location);
  }
}

TEST(Export, EnumerationRejectsGarbage) {
  EXPECT_THROW(enumeration_from_text(""), ConfigError);
  EXPECT_THROW(enumeration_from_text("wrong header\nstats 1 1 1 1 1\n"),
               ConfigError);
  EXPECT_THROW(enumeration_from_text("fastfit-enumeration v1\n"),
               ConfigError);  // missing stats
  EXPECT_THROW(
      enumeration_from_text("fastfit-enumeration v1\nstats 1 1 1 1 1\n"
                            "point 1 99 0 0 0 0 0 0 1 1.0 1 x\n"),
      ConfigError);  // kind out of range
  EXPECT_THROW(
      enumeration_from_text("fastfit-enumeration v1\nstats 1 1 1 1 1\n"
                            "bogus-tag 3\n"),
      ConfigError);
}

TEST(Export, EnumerationRoundTripSurvivesRealProfile) {
  // End-to-end: profile a real workload, persist, restore, and verify the
  // restored points drive identical measurements.
  const auto workload = apps::make_workload("LU");
  CampaignOptions options;
  options.nranks = 8;
  options.trials_per_point = 4;
  Campaign campaign(*workload, options);
  campaign.profile();
  const auto restored =
      enumeration_from_text(to_text(campaign.enumeration()));
  ASSERT_EQ(restored.points.size(), campaign.enumeration().points.size());
  const auto direct = campaign.measure(campaign.enumeration().points[0], 4);
  const auto via_restored = campaign.measure(restored.points[0], 4);
  // Trials advance the campaign counter, so compare identity not counts.
  EXPECT_EQ(direct.point.site_id, via_restored.point.site_id);
  EXPECT_EQ(direct.point.invocation, via_restored.point.invocation);
  EXPECT_EQ(direct.trials, via_restored.trials);
}

}  // namespace
}  // namespace fastfit::core

// Point-to-point injection (the future-work extension): interposition,
// corruption, enumeration, and trial classification.

#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "core/p2p_study.hpp"
#include "support/error.hpp"

namespace fastfit::core {
namespace {

using namespace std::chrono_literals;

CampaignOptions small_options() {
  CampaignOptions opts;
  opts.nranks = 8;
  opts.trials_per_point = 6;
  opts.seed = 404;
  return opts;
}

TEST(P2pStudy, ProfilerRecordsP2pSites) {
  // MG and LU use halo-exchange sends/receives.
  const auto workload = apps::make_workload("MG");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  bool any = false;
  for (int r = 0; r < 8; ++r) {
    any = any || !campaign.profiler().rank(r).p2p_sites.empty();
  }
  EXPECT_TRUE(any);
}

TEST(P2pStudy, EnumerationPrunesLikeCollectives) {
  const auto workload = apps::make_workload("LU");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  const auto e = enumerate_p2p_points(campaign.profiler());
  EXPECT_GT(e.stats.total_points, 0u);
  EXPECT_LE(e.stats.after_semantic, e.stats.total_points);
  EXPECT_LE(e.stats.after_context, e.stats.after_semantic);
  EXPECT_EQ(e.points.size(), e.stats.after_context);
  for (const auto& p : e.points) {
    EXPECT_GT(p.n_inv, 0u);
    EXPECT_FALSE(p.site_location.empty());
  }
}

TEST(P2pStudy, CollectiveOnlyWorkloadHasNoP2pPoints) {
  const auto workload = apps::make_workload("IS");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  const auto e = enumerate_p2p_points(campaign.profiler());
  EXPECT_EQ(e.stats.total_points, 0u);
  EXPECT_TRUE(e.points.empty());
}

TEST(P2pStudy, BufferFaultsInHaloExchangeAreMostlyTolerated) {
  // A flipped bit in one halo value perturbs the stencil slightly; the
  // solver smooths it away or the residual check catches divergence.
  const auto workload = apps::make_workload("MG");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  const auto e = enumerate_p2p_points(campaign.profiler());
  const auto it = std::find_if(
      e.points.begin(), e.points.end(), [](const P2pInjectionPoint& p) {
        return p.param == mpi::P2pParam::Buffer;
      });
  ASSERT_NE(it, e.points.end());
  const auto result = measure_p2p(campaign, *it, 10);
  EXPECT_EQ(result.trials, 10u);
  // No MPI_ERR/SEG_FAULT from data corruption.
  EXPECT_EQ(result.fraction(inject::Outcome::MpiErr), 0.0);
  EXPECT_EQ(result.fraction(inject::Outcome::SegFault), 0.0);
}

TEST(P2pStudy, TagFaultsHangOrErrorTheJob) {
  // A corrupted tag either goes negative (MPI_ERR) or becomes a valid tag
  // nobody sends on (the receive starves: INF_LOOP).
  const auto workload = apps::make_workload("LU");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  const auto e = enumerate_p2p_points(campaign.profiler());
  const auto it = std::find_if(
      e.points.begin(), e.points.end(), [](const P2pInjectionPoint& p) {
        return p.param == mpi::P2pParam::Tag &&
               p.kind == mpi::P2pKind::Recv;
      });
  ASSERT_NE(it, e.points.end());
  const auto result = measure_p2p(campaign, *it, 8);
  EXPECT_GE(result.fraction(inject::Outcome::MpiErr) +
                result.fraction(inject::Outcome::InfLoop),
            0.99);
}

TEST(P2pStudy, DistributionHelperFilters) {
  std::vector<P2pPointResult> results(2);
  results[0].point.kind = mpi::P2pKind::Send;
  results[0].point.param = mpi::P2pParam::Buffer;
  results[0].record(inject::Outcome::Success);
  results[1].point.kind = mpi::P2pKind::Recv;
  results[1].point.param = mpi::P2pParam::Tag;
  results[1].record(inject::Outcome::InfLoop);

  const auto all = p2p_outcome_distribution(results);
  EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(inject::Outcome::Success)],
                   0.5);
  const auto sends = p2p_outcome_distribution(results, mpi::P2pKind::Send);
  EXPECT_DOUBLE_EQ(sends[static_cast<std::size_t>(inject::Outcome::Success)],
                   1.0);
  const auto tags = p2p_outcome_distribution(results, std::nullopt,
                                             mpi::P2pParam::Tag);
  EXPECT_DOUBLE_EQ(tags[static_cast<std::size_t>(inject::Outcome::InfLoop)],
                   1.0);
}

TEST(P2pStudy, MeasurementIsDeterministic) {
  const auto workload = apps::make_workload("LU");
  Campaign c1(*workload, small_options());
  Campaign c2(*workload, small_options());
  c1.profile();
  c2.profile();
  const auto e = enumerate_p2p_points(c1.profiler());
  ASSERT_FALSE(e.points.empty());
  const auto r1 = measure_p2p(c1, e.points.front(), 6);
  const auto r2 = measure_p2p(c2, e.points.front(), 6);
  EXPECT_EQ(r1.counts, r2.counts);
}

TEST(P2pStudy, NonParameterFaultModelIsRejectedWithFamilies) {
  // The CLI fails fast at parse time; the library-level guard must give
  // direct API callers the same actionable message, naming the supported
  // parameter families.
  const auto workload = apps::make_workload("LU");
  auto opts = small_options();
  opts.fault_models = {inject::FaultModelSpec::parse("rank-death")};
  Campaign campaign(*workload, opts);
  campaign.profile();
  const auto e = enumerate_p2p_points(campaign.profiler());
  ASSERT_FALSE(e.points.empty());
  try {
    measure_p2p(campaign, e.points.front(), 1);
    FAIL() << "rank-death must have no p2p manifestation";
  } catch (const ConfigError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("rank-death"), std::string::npos);
    EXPECT_NE(what.find("supported families"), std::string::npos);
    EXPECT_NE(what.find("single-bit-flip"), std::string::npos);
  }
}

TEST(P2pStudy, SpecDescribe) {
  inject::P2pFaultSpec spec;
  spec.rank = 3;
  spec.param = mpi::P2pParam::Peer;
  spec.model = inject::FaultModel::DoubleBitFlip;
  const auto text = spec.describe();
  EXPECT_NE(text.find("rank=3"), std::string::npos);
  EXPECT_NE(text.find("peer"), std::string::npos);
  EXPECT_NE(text.find("double-bit-flip"), std::string::npos);
}

}  // namespace
}  // namespace fastfit::core

// TrialJournal: durable trial records, header validation, torn-line
// recovery — the journal half of the kill-and-resume contract (the
// campaign half lives in test_resilience.cpp).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/journal.hpp"
#include "support/error.hpp"

namespace fastfit::core {
namespace {

JournalHeader header() {
  JournalHeader h;
  h.workload = "LU";
  h.seed = 77;
  h.nranks = 8;
  h.trials_per_point = 6;
  h.fault_model = "single-bit-flip";
  h.algorithms = "0/0";
  h.golden_digest = 0xfeedfaceULL;
  return h;
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "fastfit_journal_" + name;
  std::remove(path.c_str());
  return path;
}

void append_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << bytes;
}

TEST(TrialJournal, CreateRefusesExistingFile) {
  const auto path = temp_path("create_refuses");
  auto journal = TrialJournal::create(path, header());
  ASSERT_NE(journal, nullptr);
  journal.reset();
  EXPECT_THROW(TrialJournal::create(path, header()), ConfigError);
}

TEST(TrialJournal, PointKeyIsStable) {
  InjectionPoint p;
  p.site_id = 3;
  p.rank = 1;
  p.invocation = 7;
  p.param = mpi::Param::Count;
  const auto key = point_key(p);
  EXPECT_EQ(key, point_key(p));
  p.invocation = 8;
  EXPECT_NE(key, point_key(p));
}

TEST(TrialJournal, ResumeReplaysTrialsLabelsAndQuarantines) {
  const auto path = temp_path("resume_replays");
  {
    auto journal = TrialJournal::create(path, header());
    journal->record_trial("k0", 0, inject::Outcome::Success);
    journal->record_trial("k0", 1, inject::Outcome::MpiErr);
    journal->record_trial("k1", 0, inject::Outcome::WrongAns);
    journal->check_or_record_label("k0", 2);
    journal->record_quarantine("k2", 3, "synthetic flake");
    // No explicit flush: the destructor must persist the tail.
  }
  auto journal = TrialJournal::resume(path, header());
  EXPECT_EQ(journal->loaded_trials(), 3u);
  EXPECT_EQ(journal->lookup("k0", 0), inject::Outcome::Success);
  EXPECT_EQ(journal->lookup("k0", 1), inject::Outcome::MpiErr);
  EXPECT_EQ(journal->lookup("k1", 0), inject::Outcome::WrongAns);
  EXPECT_EQ(journal->lookup("k1", 1), std::nullopt);
  EXPECT_EQ(journal->lookup("k9", 0), std::nullopt);
  EXPECT_EQ(journal->label("k0"), 2u);
  EXPECT_EQ(journal->label("k1"), std::nullopt);
  const auto quarantine = journal->quarantine("k2");
  ASSERT_TRUE(quarantine.has_value());
  EXPECT_EQ(quarantine->retries, 3u);
  EXPECT_EQ(quarantine->error, "synthetic flake");
}

TEST(TrialJournal, DutyCycleSpecRoundTripsThroughPointKey) {
  // Non-default fault specs join the point key as their canonical string;
  // the intermittent duty-cycle form must survive the journal round trip
  // like every other trigger.
  InjectionPoint p;
  p.site_id = 3;
  p.rank = 1;
  p.invocation = 7;
  p.param = mpi::Param::Count;
  p.fault = inject::FaultModelSpec::parse("stuck-at-one@duty=1/4");
  const auto key = point_key(p);
  EXPECT_NE(key.find("stuck-at-one@duty=1/4"), std::string::npos);
  EXPECT_EQ(inject::FaultModelSpec::parse("stuck-at-one@duty=1/4"), p.fault);

  const auto path = temp_path("duty_roundtrip");
  {
    auto journal = TrialJournal::create(path, header());
    journal->record_trial(key, 0, inject::Outcome::WrongAns, false, "",
                          p.fault.canonical());
  }
  auto journal = TrialJournal::resume(path, header());
  EXPECT_EQ(journal->lookup(key, 0), inject::Outcome::WrongAns);
}

TEST(TrialJournal, RecordTrialIsIdempotent) {
  const auto path = temp_path("idempotent");
  {
    auto journal = TrialJournal::create(path, header());
    journal->record_trial("k0", 0, inject::Outcome::Success);
    journal->record_trial("k0", 0, inject::Outcome::Success);
  }
  auto journal = TrialJournal::resume(path, header());
  EXPECT_EQ(journal->loaded_trials(), 1u);
}

TEST(TrialJournal, ResumeRejectsChangedIdentity) {
  const auto path = temp_path("identity");
  TrialJournal::create(path, header()).reset();

  auto changed = header();
  changed.seed = 78;
  EXPECT_THROW(TrialJournal::resume(path, changed), ConfigError);
  changed = header();
  changed.golden_digest = 1;
  EXPECT_THROW(TrialJournal::resume(path, changed), ConfigError);
  changed = header();
  changed.workload = "MG";
  EXPECT_THROW(TrialJournal::resume(path, changed), ConfigError);
  changed = header();
  changed.nranks = 4;
  EXPECT_THROW(TrialJournal::resume(path, changed), ConfigError);
  changed = header();
  changed.fault_model = "stuck-high";
  EXPECT_THROW(TrialJournal::resume(path, changed), ConfigError);
  // The unchanged header still resumes.
  EXPECT_NE(TrialJournal::resume(path, header()), nullptr);
}

TEST(TrialJournal, ResumeTruncatesTornFinalLine) {
  const auto path = temp_path("torn");
  {
    auto journal = TrialJournal::create(path, header());
    journal->record_trial("k0", 0, inject::Outcome::Success);
    journal->record_trial("k0", 1, inject::Outcome::SegFault);
  }
  // Simulate a SIGKILL mid-write: a final line without its newline.
  append_raw(path, "{\"t\":\"trial\",\"p\":\"k0\",\"i\":2,");
  auto journal = TrialJournal::resume(path, header());
  EXPECT_EQ(journal->loaded_trials(), 2u);
  EXPECT_EQ(journal->lookup("k0", 2), std::nullopt);
  // The torn bytes are gone: appending and resuming again stays parseable.
  journal->record_trial("k0", 2, inject::Outcome::InfLoop);
  journal.reset();
  auto again = TrialJournal::resume(path, header());
  EXPECT_EQ(again->loaded_trials(), 3u);
  EXPECT_EQ(again->lookup("k0", 2), inject::Outcome::InfLoop);
}

TEST(TrialJournal, ResumeRejectsCorruptMidFileLine) {
  const auto path = temp_path("corrupt");
  TrialJournal::create(path, header()).reset();
  append_raw(path, "this is not json\n");
  EXPECT_THROW(TrialJournal::resume(path, header()), ConfigError);
}

TEST(TrialJournal, ResumeOfMissingFileDegradesToCreate) {
  const auto path = temp_path("missing");
  auto journal = TrialJournal::resume(path, header());
  ASSERT_NE(journal, nullptr);
  EXPECT_EQ(journal->loaded_trials(), 0u);
  journal->record_trial("k0", 0, inject::Outcome::Success);
  journal.reset();
  EXPECT_EQ(TrialJournal::resume(path, header())->loaded_trials(), 1u);
}

TEST(TrialJournal, LabelCheckpointDetectsDivergence) {
  const auto path = temp_path("label_divergence");
  {
    auto journal = TrialJournal::create(path, header());
    journal->check_or_record_label("k0", 2);
    journal->check_or_record_label("k0", 2);  // same label: fine
    EXPECT_THROW(journal->check_or_record_label("k0", 3), ConfigError);
  }
  auto journal = TrialJournal::resume(path, header());
  journal->check_or_record_label("k0", 2);
  EXPECT_THROW(journal->check_or_record_label("k0", 1), ConfigError);
}

TEST(TrialJournal, HeaderSurvivesEscapableStrings) {
  const auto path = temp_path("escapes");
  auto h = header();
  h.workload = "we\"ird\\name\twith\nnewline";
  TrialJournal::create(path, h).reset();
  EXPECT_NE(TrialJournal::resume(path, h), nullptr);
  EXPECT_THROW(TrialJournal::resume(path, header()), ConfigError);
}

}  // namespace
}  // namespace fastfit::core

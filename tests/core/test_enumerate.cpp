// Injection-point enumeration and pruning accounting.

#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "core/enumerate.hpp"

namespace fastfit::core {
namespace {

using namespace std::chrono_literals;

Enumeration enumerate_workload(const std::string& name, int nranks) {
  const auto workload = apps::make_workload(name);
  trace::ContextRegistry contexts(nranks);
  profile::Profiler profiler(contexts);
  mpi::WorldOptions opts;
  opts.nranks = nranks;
  opts.watchdog = 20000ms;
  const auto job = apps::run_job(*workload, opts, &profiler, contexts);
  EXPECT_TRUE(job.world.clean());
  return enumerate_points(profiler);
}

TEST(Enumerate, PruningCountsAreMonotone) {
  for (const auto& name : apps::workload_names()) {
    const auto e = enumerate_workload(name, 8);
    EXPECT_GT(e.stats.total_points, 0u) << name;
    EXPECT_LE(e.stats.after_semantic, e.stats.total_points) << name;
    EXPECT_LE(e.stats.after_context, e.stats.after_semantic) << name;
    EXPECT_EQ(e.stats.after_context, e.points.size()) << name;
  }
}

TEST(Enumerate, SemanticReductionGrowsWithRankCount) {
  // More ranks, same equivalence classes: the semantic win scales — the
  // paper's core scaling argument (96-97% at 32 ranks).
  const auto e8 = enumerate_workload("LU", 8);
  const auto e32 = enumerate_workload("LU", 32);
  EXPECT_GT(e32.stats.semantic_reduction(), e8.stats.semantic_reduction());
  EXPECT_GE(e32.stats.semantic_reduction(), 0.90);
}

TEST(Enumerate, ReductionFormulas) {
  PruningStats s;
  s.total_points = 1000;
  s.after_semantic = 100;
  s.after_context = 40;
  EXPECT_DOUBLE_EQ(s.semantic_reduction(), 0.9);
  EXPECT_DOUBLE_EQ(s.context_reduction(), 0.6);
  EXPECT_DOUBLE_EQ(s.structural_reduction(), 0.96);
  PruningStats zero;
  EXPECT_EQ(zero.semantic_reduction(), 0.0);
  EXPECT_EQ(zero.context_reduction(), 0.0);
}

TEST(Enumerate, PointsCarryFeatures) {
  const auto e = enumerate_workload("miniMD", 8);
  bool saw_errhal = false;
  bool saw_compute_phase = false;
  for (const auto& p : e.points) {
    EXPECT_GT(p.n_inv, 0u);
    EXPECT_GE(p.n_diff_stack, 1u);
    EXPECT_FALSE(p.site_location.empty());
    saw_errhal |= p.errhal;
    saw_compute_phase |= (p.phase == trace::ExecPhase::Compute);
    // The feature vector must mirror the point fields.
    const auto x = p.features();
    EXPECT_EQ(x[static_cast<std::size_t>(ml::Feature::ErrHal)],
              p.errhal ? 1.0 : 0.0);
    EXPECT_EQ(x[static_cast<std::size_t>(ml::Feature::NInv)],
              static_cast<double>(p.n_inv));
  }
  EXPECT_TRUE(saw_errhal);
  EXPECT_TRUE(saw_compute_phase);
}

TEST(Enumerate, RepresentativesComeFromDistinctClasses) {
  const auto e = enumerate_workload("FT", 8);
  EXPECT_GE(e.classes.size(), 2u);  // root class + bulk class
  std::set<int> reps;
  for (const auto& p : e.points) reps.insert(p.rank);
  EXPECT_EQ(reps.size(), e.classes.size());
}

TEST(Enumerate, EveryPointParamIsInjectableForItsKind) {
  const auto e = enumerate_workload("IS", 8);
  for (const auto& p : e.points) {
    const auto params = mpi::injectable_params(p.kind);
    EXPECT_NE(std::find(params.begin(), params.end(), p.param), params.end());
  }
}

TEST(Enumerate, BarrierContributesOnlyCommParam) {
  const auto e = enumerate_workload("MG", 8);
  bool saw_barrier = false;
  for (const auto& p : e.points) {
    if (p.kind == mpi::CollectiveKind::Barrier) {
      saw_barrier = true;
      EXPECT_EQ(p.param, mpi::Param::Comm);
    }
  }
  EXPECT_TRUE(saw_barrier);
}

}  // namespace
}  // namespace fastfit::core

// Report aggregations (the math behind Figs 7-11 and Table IV).

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "stats/levels.hpp"

namespace fastfit::core {
namespace {

PointResult make_result(mpi::CollectiveKind kind, mpi::Param param,
                        std::initializer_list<std::pair<inject::Outcome, int>>
                            outcomes,
                        trace::ExecPhase phase = trace::ExecPhase::Compute,
                        bool errhal = false) {
  PointResult r;
  r.point.kind = kind;
  r.point.param = param;
  r.point.phase = phase;
  r.point.errhal = errhal;
  r.point.n_inv = 10;
  r.point.stack_depth = 2.0;
  r.point.n_diff_stack = 1;
  for (const auto& [outcome, count] : outcomes) {
    for (int i = 0; i < count; ++i) r.record(outcome);
  }
  return r;
}

TEST(Report, OutcomeDistributionSumsToOne) {
  std::vector<PointResult> results{
      make_result(mpi::CollectiveKind::Allreduce, mpi::Param::SendBuf,
                  {{inject::Outcome::Success, 6}, {inject::Outcome::MpiErr, 4}}),
      make_result(mpi::CollectiveKind::Bcast, mpi::Param::Count,
                  {{inject::Outcome::SegFault, 10}}),
  };
  const auto dist = outcome_distribution(results);
  double sum = 0.0;
  for (double v : dist) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(dist[static_cast<std::size_t>(inject::Outcome::Success)],
                   0.3);
  EXPECT_DOUBLE_EQ(dist[static_cast<std::size_t>(inject::Outcome::SegFault)],
                   0.5);
}

TEST(Report, DistributionFilters) {
  std::vector<PointResult> results{
      make_result(mpi::CollectiveKind::Allreduce, mpi::Param::SendBuf,
                  {{inject::Outcome::Success, 10}}),
      make_result(mpi::CollectiveKind::Bcast, mpi::Param::SendBuf,
                  {{inject::Outcome::SegFault, 10}}),
      make_result(mpi::CollectiveKind::Allreduce, mpi::Param::Op,
                  {{inject::Outcome::WrongAns, 10}}),
  };
  const auto allreduce_only =
      outcome_distribution(results, mpi::CollectiveKind::Allreduce);
  EXPECT_DOUBLE_EQ(
      allreduce_only[static_cast<std::size_t>(inject::Outcome::SegFault)],
      0.0);
  const auto sendbuf_only =
      outcome_distribution(results, std::nullopt, mpi::Param::SendBuf);
  EXPECT_DOUBLE_EQ(
      sendbuf_only[static_cast<std::size_t>(inject::Outcome::WrongAns)], 0.0);
  const auto both = outcome_distribution(
      results, mpi::CollectiveKind::Allreduce, mpi::Param::SendBuf);
  EXPECT_DOUBLE_EQ(
      both[static_cast<std::size_t>(inject::Outcome::Success)], 1.0);
  // No matching trials -> all zeros, not NaN.
  const auto none = outcome_distribution(
      results, mpi::CollectiveKind::Scan, std::nullopt);
  for (double v : none) EXPECT_EQ(v, 0.0);
}

TEST(Report, KindsAndParamsPresent) {
  std::vector<PointResult> results{
      make_result(mpi::CollectiveKind::Bcast, mpi::Param::SendBuf,
                  {{inject::Outcome::Success, 1}}),
      make_result(mpi::CollectiveKind::Allreduce, mpi::Param::Op,
                  {{inject::Outcome::Success, 1}}),
      make_result(mpi::CollectiveKind::Allreduce, mpi::Param::SendBuf,
                  {{inject::Outcome::Success, 1}}),
  };
  EXPECT_EQ(kinds_present(results).size(), 2u);
  EXPECT_EQ(params_present(results).size(), 2u);
}

TEST(Report, LevelDistribution) {
  std::vector<PointResult> results{
      make_result(mpi::CollectiveKind::Barrier, mpi::Param::Comm,
                  {{inject::Outcome::MpiErr, 10}}),  // error rate 1.0 -> high
      make_result(mpi::CollectiveKind::Barrier, mpi::Param::Comm,
                  {{inject::Outcome::Success, 10}}),  // 0.0 -> low
      make_result(mpi::CollectiveKind::Barrier, mpi::Param::Comm,
                  {{inject::Outcome::Success, 5},
                   {inject::Outcome::InfLoop, 5}}),  // 0.5 -> med
  };
  const auto dist = level_distribution(results, mpi::CollectiveKind::Barrier,
                                       stats::skewed_low_med_high());
  ASSERT_EQ(dist.size(), 3u);
  EXPECT_NEAR(dist[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(dist[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(dist[2], 1.0 / 3.0, 1e-12);
}

TEST(Report, FeatureCorrelationsFollowConstruction) {
  // Errhal points get high error rates, non-errhal get low: the ErrHdl
  // column must exceed 0.5 and Non-ErrHdl must fall below (Eq-1 scale).
  std::vector<PointResult> results;
  for (int i = 0; i < 20; ++i) {
    results.push_back(make_result(
        mpi::CollectiveKind::Allreduce, mpi::Param::SendBuf,
        {{inject::Outcome::MpiErr, 9}, {inject::Outcome::Success, 1}},
        trace::ExecPhase::Input, true));
    results.push_back(make_result(
        mpi::CollectiveKind::Allreduce, mpi::Param::SendBuf,
        {{inject::Outcome::Success, 9}, {inject::Outcome::MpiErr, 1}},
        trace::ExecPhase::Compute, false));
  }
  const auto correlations =
      feature_correlations(results, stats::even_thresholds(4));
  ASSERT_EQ(correlations.size(), 9u);
  std::map<std::string, double> by_name(correlations.begin(),
                                        correlations.end());
  EXPECT_GT(by_name.at("ErrHdl"), 0.9);
  EXPECT_LT(by_name.at("Non-ErrHdl"), 0.1);
  EXPECT_GT(by_name.at("Input Phase"), 0.9);
  EXPECT_LT(by_name.at("Compute Phase"), 0.1);
  // Constant features carry no signal: Eq-1 reports 0.5.
  EXPECT_DOUBLE_EQ(by_name.at("nInv"), 0.5);
  EXPECT_DOUBLE_EQ(by_name.at("StackDepth"), 0.5);
  for (const auto& [name, value] : correlations) {
    EXPECT_GE(value, 0.0) << name;
    EXPECT_LE(value, 1.0) << name;
  }
}

TEST(Report, RenderersProduceAlignedTables) {
  const auto dist = outcome_distribution(
      {make_result(mpi::CollectiveKind::Bcast, mpi::Param::SendBuf,
                   {{inject::Outcome::Success, 1}})});
  const auto text = render_outcome_table({{"IS", dist}, {"FT", dist}});
  EXPECT_NE(text.find("SUCCESS"), std::string::npos);
  EXPECT_NE(text.find("IS"), std::string::npos);
  EXPECT_NE(text.find("FT"), std::string::npos);

  const auto levels = render_level_table({{"MPI_Barrier", {0.2, 0.3, 0.5}}},
                                         {"low", "med", "high"});
  EXPECT_NE(levels.find("MPI_Barrier"), std::string::npos);
  EXPECT_NE(levels.find("50.0%"), std::string::npos);
}

}  // namespace
}  // namespace fastfit::core

// Campaign-level fail-stop and message-fault coverage: the fault-model-v2
// axes must flow end to end — enumeration crosses points with the spec
// list, rank-death trials classify RANK_DEAD (or REPAIRED under --repair),
// outcomes stay bit-identical across serial/parallel executors, journal
// resume, and snapshots on|off (non-replayable specs take the from-scratch
// fallback), and the telemetry counters agree with the returned counts.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "apps/registry.hpp"
#include "core/campaign.hpp"
#include "inject/fault_model.hpp"
#include "inject/outcome.hpp"
#include "telemetry/recorder.hpp"

namespace fastfit::core {
namespace {

namespace tel = fastfit::telemetry;

constexpr auto kRankDead = static_cast<std::size_t>(inject::Outcome::RankDead);
constexpr auto kRepaired = static_cast<std::size_t>(inject::Outcome::Repaired);

CampaignOptions failstop_options() {
  CampaignOptions opts;
  opts.nranks = 8;
  opts.trials_per_point = 2;
  opts.seed = 20250808;
  opts.max_parallel_trials = 1;
  opts.fault_models = {inject::FaultModelSpec::parse("rank-death")};
  return opts;
}

std::vector<PointResult> run_points(const apps::Workload& workload,
                                    const CampaignOptions& opts,
                                    std::size_t npoints,
                                    SnapshotCache::Stats* stats_out = nullptr) {
  Campaign campaign(workload, opts);
  campaign.profile();
  const auto& points = campaign.enumeration().points;
  const auto n = std::min(npoints, points.size());
  auto results = campaign.measure_many(
      std::span<const InjectionPoint>(points.data(), n),
      opts.trials_per_point);
  if (stats_out != nullptr) *stats_out = campaign.snapshot_stats();
  EXPECT_TRUE(campaign.health().clean());
  return results;
}

void expect_same_counts(const std::vector<PointResult>& a,
                        const std::vector<PointResult>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].counts, b[i].counts) << label << " point " << i;
    EXPECT_EQ(a[i].trials, b[i].trials) << label << " point " << i;
  }
}

TEST(FailStopCampaign, RankDeathClassifiesRankDeadWithoutRepair) {
  const auto workload = apps::make_workload("LU");
  const auto results = run_points(*workload, failstop_options(), 4);
  ASSERT_FALSE(results.empty());
  for (const auto& r : results) {
    EXPECT_EQ(r.counts[kRankDead], r.trials);
    EXPECT_EQ(r.counts[kRepaired], 0u);
  }
}

TEST(FailStopCampaign, RepairYieldsRepairedOutcomes) {
  const auto workload = apps::make_workload("LU");
  auto opts = failstop_options();
  opts.repair = true;
  const auto results = run_points(*workload, opts, 6);
  ASSERT_FALSE(results.empty());
  std::uint32_t repaired_total = 0;
  for (const auto& r : results) {
    // Every trial either tore the world down or shrank and continued —
    // and deterministically so: both trials of a point agree.
    EXPECT_EQ(r.counts[kRankDead] + r.counts[kRepaired], r.trials);
    EXPECT_TRUE(r.counts[kRankDead] == 0 || r.counts[kRepaired] == 0)
        << "trial outcomes of one point diverged";
    repaired_total += r.counts[kRepaired];
  }
  // LU opts into repair: the shrink-and-continue path must actually fire.
  EXPECT_GT(repaired_total, 0u);
}

TEST(FailStopCampaign, RepairedOutcomesIdenticalAcrossExecutors) {
  const auto workload = apps::make_workload("LU");
  auto serial = failstop_options();
  serial.repair = true;
  const auto expected = run_points(*workload, serial, 6);

  auto pooled = serial;
  pooled.max_parallel_trials = 4;
  expect_same_counts(expected, run_points(*workload, pooled, 6),
                     "rank-death pool-4");
}

TEST(FailStopCampaign, RankDeathResumesBitIdenticalFromJournal) {
  const auto workload = apps::make_workload("LU");
  auto opts = failstop_options();
  opts.repair = true;
  const auto expected = run_points(*workload, opts, 4);

  const std::string path =
      ::testing::TempDir() + "fastfit_failstop_resume.jsonl";
  std::remove(path.c_str());
  {
    Campaign partial(*workload, opts);
    partial.profile();
    partial.attach_journal(path, JournalMode::Create);
    const auto& points = partial.enumeration().points;
    ASSERT_GE(points.size(), 4u);
    partial.measure_many(std::span<const InjectionPoint>(points.data(), 2),
                         opts.trials_per_point);
    partial.detach_journal();
  }

  Campaign resumed(*workload, opts);
  resumed.profile();
  resumed.attach_journal(path, JournalMode::Resume);
  const auto& points = resumed.enumeration().points;
  const auto results = resumed.measure_many(
      std::span<const InjectionPoint>(points.data(), 4),
      opts.trials_per_point);
  EXPECT_GT(resumed.health().replayed_trials, 0u);
  expect_same_counts(expected, results, "rank-death resume");
}

TEST(FailStopCampaign, NonReplayableSpecsBypassSnapshotsWithParity) {
  // Satellite: rank death and message faults change world wiring, not a
  // recorded parameter — the prefix-replay fast path must step aside
  // (from-scratch fallback) and the results must not notice.
  const auto workload = apps::make_workload("LU");
  for (const char* model : {"rank-death", "message-drop", "message-delay",
                            "message-corrupt"}) {
    auto off = failstop_options();
    off.fault_models = {inject::FaultModelSpec::parse(model)};
    off.snapshots = SnapshotMode::Off;
    const auto expected = run_points(*workload, off, 3);

    auto on = off;
    on.snapshots = SnapshotMode::On;
    SnapshotCache::Stats stats;
    const auto replayed = run_points(*workload, on, 3, &stats);
    expect_same_counts(expected, replayed, model);
    // The guard must have prevented every snapshot attempt: no clones,
    // no divergence-driven fallbacks.
    EXPECT_EQ(stats.clones, 0u) << model;
    EXPECT_EQ(stats.fallbacks, 0u) << model;
  }
}

TEST(FailStopCampaign, ProbabilisticTriggerIsDeterministicPerTrial) {
  // A per-call coin flip is still a pure function of (seed, point, trial):
  // serial and pooled executions agree, as do snapshots off and on (the
  // probabilistic trigger is non-replayable and takes the fallback).
  const auto workload = apps::make_workload("CG");
  CampaignOptions opts;
  opts.nranks = 8;
  opts.trials_per_point = 3;
  opts.seed = 99;
  opts.max_parallel_trials = 1;
  opts.snapshots = SnapshotMode::Off;
  opts.fault_models = {
      inject::FaultModelSpec::parse("single-bit-flip@prob=0.5")};
  const auto expected = run_points(*workload, opts, 3);

  auto pooled = opts;
  pooled.max_parallel_trials = 4;
  pooled.snapshots = SnapshotMode::On;
  SnapshotCache::Stats stats;
  expect_same_counts(expected, run_points(*workload, pooled, 3, &stats),
                     "prob trigger");
  EXPECT_EQ(stats.clones, 0u);
}

TEST(FailStopCampaign, SpecListCrossesPointsSpecMajor) {
  const auto workload = apps::make_workload("LU");
  CampaignOptions base;
  base.nranks = 8;
  base.seed = 7;

  Campaign plain(*workload, base);
  plain.profile();
  const auto& base_points = plain.enumeration().points;
  const std::size_t nbase = base_points.size();
  std::set<std::tuple<std::uint32_t, int, std::uint64_t>> sites;
  for (const auto& p : base_points) {
    sites.insert({p.site_id, p.rank, p.invocation});
  }

  auto crossed = base;
  crossed.fault_models = {inject::FaultModelSpec{},
                          inject::FaultModelSpec::parse("rank-death")};
  Campaign campaign(*workload, crossed);
  campaign.profile();
  const auto& points = campaign.enumeration().points;
  // Parameter models keep the full param axis; rank death collapses it to
  // one point per (site, rank, invocation).
  ASSERT_EQ(points.size(), nbase + sites.size());
  for (std::size_t i = 0; i < nbase; ++i) {
    EXPECT_TRUE(points[i].fault.is_default());
  }
  for (std::size_t i = nbase; i < points.size(); ++i) {
    EXPECT_EQ(points[i].fault.model, inject::FaultModel::RankDeath);
  }
}

TEST(FailStopCampaign, DuplicateSpecListIsRejected) {
  const auto workload = apps::make_workload("EP");
  CampaignOptions opts;
  opts.fault_models = {inject::FaultModelSpec{}, inject::FaultModelSpec{}};
  EXPECT_THROW(Campaign c(*workload, opts), ConfigError);
  opts.fault_models.clear();
  EXPECT_THROW(Campaign c(*workload, opts), ConfigError);
}

class FailStopTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& rec = tel::Recorder::instance();
    rec.enable();
    rec.reset();
  }
  void TearDown() override {
    auto& rec = tel::Recorder::instance();
    rec.reset();
    rec.disable();
  }
};

TEST_F(FailStopTelemetryTest, CountersMatchReportedOutcomes) {
  const auto workload = apps::make_workload("LU");
  auto opts = failstop_options();
  opts.repair = true;
  const auto results = run_points(*workload, opts, 4);

  std::uint64_t rank_dead = 0;
  std::uint64_t repaired = 0;
  for (const auto& r : results) {
    rank_dead += r.counts[kRankDead];
    repaired += r.counts[kRepaired];
  }
  const auto snap = tel::Recorder::instance().metrics();
  EXPECT_EQ(snap.counter_value("fastfit_trials_total",
                               "outcome=\"RANK_DEAD\""),
            rank_dead);
  EXPECT_EQ(snap.counter_value("fastfit_trials_total",
                               "outcome=\"REPAIRED\""),
            repaired);
  EXPECT_GT(rank_dead + repaired, 0u);
}

}  // namespace
}  // namespace fastfit::core

// Crash-resilient campaign execution: the retrying trial guard with
// quarantine, kill-and-resume through the trial journal, and watchdog
// escalation / storm recalibration (docs/resilience.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "apps/registry.hpp"
#include "apps/workload.hpp"
#include "core/campaign.hpp"
#include "core/scheduler.hpp"
#include "support/error.hpp"

namespace fastfit::core {
namespace {

using namespace std::chrono_literals;

// A small SPMD kernel (bcast + allreduce) whose failure behaviour the
// test controls from outside:
//  - `fail_budget` > 0: rank 0 throws a std::runtime_error at job start —
//    an *internal* error (not a simulated fault), the kind the trial
//    guard must retry and quarantine.
//  - `hang_from`/`hang_until`: rank 0 skips the collectives for jobs
//    whose ordinal falls in [hang_from, hang_until], so its peers block
//    until the watchdog fires — a deterministic INF_LOOP storm.
// Job ordinals count every World execution (golden = 1, profiling = 2,
// trials from 3), assigned by rank 0 at entry.
class SupervisedWorkload final : public apps::Workload {
 public:
  std::string name() const override { return "supervised"; }

  std::uint64_t run_rank(apps::AppContext& ctx) const override {
    auto& mpi = ctx.mpi;
    auto& tr = ctx.trace;
    bool hang = false;
    if (mpi.rank() == 0) {
      const auto job = jobs.fetch_add(1, std::memory_order_relaxed) + 1;
      int budget = fail_budget.load(std::memory_order_relaxed);
      while (budget > 0 &&
             !fail_budget.compare_exchange_weak(budget, budget - 1)) {
      }
      if (budget > 0) throw std::runtime_error("synthetic internal flake");
      hang = job >= hang_from.load(std::memory_order_relaxed) &&
             job <= hang_until.load(std::memory_order_relaxed);
    }

    tr.set_phase(trace::ExecPhase::Compute);
    trace::FunctionScope scope(tr, "kernel");
    if (hang) return 0;  // silent early exit: peers wait until the watchdog
    const double seeded = mpi.bcast_value(
        mpi.rank() == 0 ? static_cast<double>(ctx.input_seed % 97) : 0.0, 0);
    const double total =
        mpi.allreduce_value(seeded + mpi.rank(), mpi::kSum);
    const double values[2] = {seeded, total};
    return apps::digest_doubles(values, 9);
  }

  mutable std::atomic<int> jobs{0};
  mutable std::atomic<int> fail_budget{0};
  mutable std::atomic<int> hang_from{0};
  mutable std::atomic<int> hang_until{-1};
};

CampaignOptions supervised_options() {
  CampaignOptions opts;
  opts.nranks = 4;
  opts.trials_per_point = 4;
  opts.seed = 101;
  opts.max_parallel_trials = 1;
  // These tests script failures by *job ordinal* (golden = 1, profiling
  // = 2, trials from 3); the snapshot recording run would shift the
  // ordinals and absorb scripted failures, so pin it off here. Snapshot
  // parity has its own suite (test_snapshot_parity.cpp).
  opts.snapshots = SnapshotMode::Off;
  return opts;
}

std::string temp_journal(const std::string& name) {
  const std::string path = ::testing::TempDir() + "fastfit_resilience_" + name;
  std::remove(path.c_str());
  return path;
}

// A send-buffer bit flip corrupts data but can never hang a collective,
// so the escalated re-run of a hang-window trial classifies as
// SUCCESS/WRONG_ANS — never a genuine INF_LOOP.
InjectionPoint sendbuf_point(const Campaign& campaign) {
  const auto& points = campaign.enumeration().points;
  const auto it =
      std::find_if(points.begin(), points.end(), [](const InjectionPoint& p) {
        return p.param == mpi::Param::SendBuf;
      });
  EXPECT_NE(it, points.end());
  return *it;
}

TEST(Resilience, InternalErrorIsRetriedNotFatal) {
  SupervisedWorkload workload;
  auto opts = supervised_options();
  opts.max_trial_retries = 2;
  Campaign campaign(workload, opts);
  campaign.profile();
  ASSERT_FALSE(campaign.enumeration().points.empty());

  // One synthetic flake: the first attempt of the first trial fails, its
  // retry succeeds, and the point's statistics are complete.
  workload.fail_budget.store(1);
  const auto result = campaign.measure(campaign.enumeration().points[0], 3);
  EXPECT_EQ(result.trials, 3u);
  EXPECT_FALSE(result.exec.quarantined);
  EXPECT_EQ(result.exec.retries, 1u);
  EXPECT_EQ(campaign.health().total_retries, 1u);
  EXPECT_EQ(campaign.health().quarantined_points, 0u);
  EXPECT_TRUE(campaign.health().clean());
}

TEST(Resilience, ExhaustedRetriesQuarantineThePointOnly) {
  SupervisedWorkload workload;
  auto opts = supervised_options();
  opts.max_trial_retries = 0;  // quarantine on the first internal error
  Campaign campaign(workload, opts);
  campaign.profile();
  const auto& points = campaign.enumeration().points;
  ASSERT_GE(points.size(), 2u);

  // Exactly one job fails: with serial execution that is point 0's first
  // trial. Point 0 must be quarantined, point 1 measured in full, and the
  // campaign must not abort.
  workload.fail_budget.store(1);
  const InjectionPoint batch[2] = {points[0], points[1]};
  const auto results = campaign.measure_many(
      std::span<const InjectionPoint>(batch, 2), 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].exec.quarantined);
  EXPECT_EQ(results[0].trials, 0u);  // remaining trials were skipped
  // Quarantine errors carry attribution: which attempt, on which lane
  // (the serial path runs inline on the submitting thread).
  EXPECT_EQ(results[0].exec.last_error,
            "attempt 1 on main thread: synthetic internal flake");
  EXPECT_FALSE(results[1].exec.quarantined);
  EXPECT_EQ(results[1].trials, 2u);
  EXPECT_EQ(campaign.health().quarantined_points, 1u);
  EXPECT_FALSE(campaign.health().clean());
}

TEST(Resilience, QuarantineIsRecordedInTheJournal) {
  SupervisedWorkload workload;
  auto opts = supervised_options();
  opts.max_trial_retries = 0;
  Campaign campaign(workload, opts);
  campaign.profile();
  const auto path = temp_journal("quarantine");
  campaign.attach_journal(path, JournalMode::Create);
  workload.fail_budget.store(1);
  const auto result = campaign.measure(campaign.enumeration().points[0], 2);
  ASSERT_TRUE(result.exec.quarantined);
  const auto record =
      campaign.journal()->quarantine(point_key(result.point));
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->error,
            "attempt 1 on main thread: synthetic internal flake");
}

TEST(Resilience, KillAndResumeIsBitIdentical) {
  // The tentpole contract: a campaign killed at an arbitrary trial —
  // including mid-write, leaving a torn final journal line — and resumed
  // from its journal produces per-point outcome counts identical to an
  // uninterrupted campaign.
  const auto workload = apps::make_workload("LU");
  CampaignOptions opts;
  opts.nranks = 8;
  opts.trials_per_point = 5;
  opts.seed = 77;

  Campaign baseline(*workload, opts);
  baseline.profile();
  const auto& points = baseline.enumeration().points;
  ASSERT_GE(points.size(), 4u);
  const std::span<const InjectionPoint> batch(points.data(), 4);
  const auto expected = baseline.measure_many(batch, 5);

  const auto path = temp_journal("kill_resume");
  {
    // "Killed" campaign: measures only half the batch before dying.
    Campaign partial(*workload, opts);
    partial.profile();
    partial.attach_journal(path, JournalMode::Create);
    partial.measure_many(batch.subspan(0, 2), 5);
    partial.detach_journal();
  }
  {
    // Simulate SIGKILL mid-write: chop bytes off the journal tail.
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long size = std::ftell(f);
    ASSERT_GT(size, 16L);
    std::fclose(f);
    ASSERT_EQ(::truncate(path.c_str(), size - 9), 0);
  }

  Campaign resumed(*workload, opts);
  resumed.profile();
  resumed.attach_journal(path, JournalMode::Resume);
  EXPECT_GT(resumed.journal()->loaded_trials(), 0u);
  const auto results = resumed.measure_many(batch, 5);
  EXPECT_GT(resumed.health().replayed_trials, 0u);

  ASSERT_EQ(results.size(), expected.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].counts, expected[i].counts) << "point " << i;
    EXPECT_EQ(results[i].trials, expected[i].trials) << "point " << i;
  }
}

TEST(Resilience, ResumeRefusesChangedSeed) {
  const auto workload = apps::make_workload("LU");
  CampaignOptions opts;
  opts.nranks = 8;
  opts.trials_per_point = 4;
  opts.seed = 77;
  const auto path = temp_journal("changed_seed");
  {
    Campaign campaign(*workload, opts);
    campaign.profile();
    campaign.attach_journal(path, JournalMode::Create);
  }
  opts.seed = 78;
  Campaign other(*workload, opts);
  other.profile();
  EXPECT_THROW(other.attach_journal(path, JournalMode::Resume), ConfigError);
  // Create also refuses to clobber the existing journal.
  EXPECT_THROW(other.attach_journal(path, JournalMode::Create), ConfigError);
}

TEST(Resilience, WatchdogStormTriggersRecalibration) {
  SupervisedWorkload workload;
  auto opts = supervised_options();
  opts.max_parallel_trials = 2;
  // This test exercises the watchdog-timeout path: with the deterministic
  // monitor on, the synthetic hang (a silent early exit) would be proven
  // a deadlock in milliseconds and never reach the storm machinery.
  opts.deterministic_hang_detection = false;
  Campaign campaign(workload, opts);
  campaign.profile();  // jobs 1 (golden) and 2 (profiling)
  ASSERT_FALSE(campaign.enumeration().points.empty());

  // Both first-pass trials (jobs 3 and 4) hang: 100% of the batch hits
  // the watchdog, which must be read as "overloaded machine", not as two
  // genuine infinite loops. The campaign re-measures the golden wall
  // time (job 5, outside the hang window), recalibrates, degrades
  // parallelism, and re-confirms both trials uncontended (jobs 6 and 7,
  // also outside the window) — so no INF_LOOP survives.
  workload.hang_from.store(3);
  workload.hang_until.store(4);
  const InjectionPoint point = sendbuf_point(campaign);
  const auto result =
      campaign.measure_many(std::span<const InjectionPoint>(&point, 1), 2);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].trials, 2u);
  EXPECT_EQ(result[0].counts[static_cast<std::size_t>(
                inject::Outcome::InfLoop)],
            0u);
  const auto health = campaign.health();
  EXPECT_EQ(health.watchdog_recalibrations, 1u);
  EXPECT_EQ(health.watchdog_confirmations, 2u);
  EXPECT_EQ(campaign.parallel_trials(), 1u);  // degraded toward serial
}

TEST(Resilience, SerialInfLoopIsConfirmedWithEscalatedBudget) {
  SupervisedWorkload workload;
  auto opts = supervised_options();  // serial: pool = 1, no storm response
  opts.deterministic_hang_detection = false;  // exercise the timeout path
  Campaign campaign(workload, opts);
  campaign.profile();

  // Job 3 (the only first-pass trial) hangs; the escalated re-run (job 4)
  // does not. Serial and parallel campaigns must classify identically, so
  // the confirmation pass runs at every pool size.
  workload.hang_from.store(3);
  workload.hang_until.store(3);
  const auto result = campaign.measure(sendbuf_point(campaign), 1);
  EXPECT_EQ(result.trials, 1u);
  EXPECT_EQ(result.counts[static_cast<std::size_t>(inject::Outcome::InfLoop)],
            0u);
  const auto health = campaign.health();
  EXPECT_EQ(health.watchdog_confirmations, 1u);
  EXPECT_EQ(health.watchdog_recalibrations, 0u);
}

TEST(Resilience, DeterministicDeadlockBypassesWatchdogMachinery) {
  // Same synthetic hang as above, but with the monitor on (the default):
  // the early exit is proven a deadlock structurally, so the trial is
  // classified INF_LOOP without an escalated re-run, without a storm
  // recalibration, and with a world autopsy attached to the point.
  SupervisedWorkload workload;
  Campaign campaign(workload, supervised_options());
  campaign.profile();

  workload.hang_from.store(3);
  workload.hang_until.store(3);
  const auto result = campaign.measure(sendbuf_point(campaign), 1);
  EXPECT_EQ(result.trials, 1u);
  EXPECT_EQ(result.counts[static_cast<std::size_t>(inject::Outcome::InfLoop)],
            1u);
  EXPECT_NE(result.exec.last_autopsy.find("deterministic deadlock"),
            std::string::npos)
      << result.exec.last_autopsy;
  const auto health = campaign.health();
  EXPECT_EQ(health.deterministic_deadlocks, 1u);
  EXPECT_EQ(health.watchdog_confirmations, 0u);
  EXPECT_EQ(health.watchdog_recalibrations, 0u);
  EXPECT_EQ(health.leaked_rank_threads, 0u);
  EXPECT_TRUE(health.clean());
}

TEST(Resilience, DeterministicFlagAndAutopsyAreJournaled) {
  SupervisedWorkload workload;
  Campaign campaign(workload, supervised_options());
  campaign.profile();
  const auto path = temp_journal("autopsy");
  campaign.attach_journal(path, JournalMode::Create);
  workload.hang_from.store(3);
  workload.hang_until.store(3);
  (void)campaign.measure(sendbuf_point(campaign), 1);
  campaign.detach_journal();

  // The journal line for the hung trial must carry the forensic fields;
  // replay ignores them, so resume stays bit-identical (covered by
  // KillAndResumeIsBitIdentical).
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
  std::fclose(f);
  EXPECT_NE(contents.find("\"d\":1"), std::string::npos);
  EXPECT_NE(contents.find("deterministic deadlock"), std::string::npos);
}

// Deterministic scripted engine for exercising the scheduler in
// isolation: every outcome is a pure function of (site, trial), every
// successful attempt reports `trial % 2` retries, and exactly one chosen
// (point, trial) fails permanently. A per-call jitter makes pool > 1
// genuinely interleave so the failure races ahead of (and behind) its
// siblings.
class ScriptedRunner final : public TrialRunner {
 public:
  ScriptedRunner(std::uint32_t fail_site, std::uint32_t fail_trial)
      : fail_site_(fail_site), fail_trial_(fail_trial) {}

  Attempt run_guarded(const InjectionPoint& point, std::uint64_t trial,
                      std::chrono::milliseconds) override {
    std::this_thread::sleep_for(
        std::chrono::microseconds((point.site_id * 131 + trial * 37) % 400));
    Attempt attempt;
    if (point.site_id == fail_site_ && trial == fail_trial_) {
      attempt.ok = false;
      attempt.retries = 2;
      attempt.error = "scripted failure";
      return attempt;
    }
    attempt.ok = true;
    attempt.retries = static_cast<std::uint32_t>(trial % 2);
    // % 5: everything but INF_LOOP, so the escalated-confirmation pass
    // stays out of this test's accounting.
    attempt.outcome = static_cast<inject::Outcome>(
        (point.site_id + trial) % (inject::kNumOutcomes - 1));
    return attempt;
  }

  std::chrono::milliseconds watchdog() const override { return 1000ms; }
  void recalibrate_after_storm(std::size_t) override {}

 private:
  std::uint32_t fail_site_;
  std::uint32_t fail_trial_;
};

// Serializes the full observation stream — every TrialRecord and
// PointStatus field the downstream sinks can see — so two runs compare
// as one string.
struct CaptureSink final : OutcomeSink {
  std::string stream;
  void on_trial(const TrialRecord& record) override {
    stream += "T " + record.key + " #" + std::to_string(record.trial) +
              " o" + std::to_string(static_cast<int>(record.outcome)) +
              (record.replayed ? " R" : "") +
              (record.deterministic ? " D" : "") + "\n";
  }
  void on_point(const PointStatus& status) override {
    stream += "P " + status.key +
              " retries=" + std::to_string(status.retries);
    if (status.quarantined) stream += " quarantined err=" + status.error;
    stream += "\n";
  }
};

TEST(Resilience, SchedulerQuarantineIsPoolOrderIndependent) {
  // Regression: the per-point quarantine state used to be accumulated in
  // arrival order (last-writer-wins error, retries from whichever jobs
  // happened to start before the failure landed), so a pool > 1 batch
  // could report different skipped sets, retries, and error text than
  // the serial run — the intermittent results_identical_to_serial: false
  // in the throughput bench. The scheduler now reconstructs the serial
  // stream from per-slot records keyed by the minimum failed ordinal.
  std::vector<InjectionPoint> points(6);
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].site_id = static_cast<std::uint32_t>(i);
    points[i].kind = mpi::CollectiveKind::Bcast;
    points[i].site_location = "synthetic:" + std::to_string(i);
    points[i].rank = 0;
    points[i].invocation = 1;
    points[i].param = mpi::Param::SendBuf;
  }
  const std::uint32_t trials = 8;

  const auto run = [&](std::size_t pool) {
    ScriptedRunner runner(/*fail_site=*/3, /*fail_trial=*/2);
    SchedulerConfig config;
    config.pool = pool;
    TrialScheduler scheduler(runner, config);
    CaptureSink sink;
    OutcomeSink* sinks[] = {&sink};
    const auto stats = scheduler.run(points, trials, nullptr, sinks);
    EXPECT_EQ(stats.quarantined_points, 1u);
    return sink.stream;
  };

  const auto serial = run(1);
  // The serial stream itself: point 3 executed trials 0 and 1 (retries
  // 0 + 1), failed at trial 2 (2 retries), skipped the rest.
  const std::string quarantined_line =
      "P " + point_key(points[3]) +
      " retries=3 quarantined err=scripted failure";
  EXPECT_NE(serial.find(quarantined_line), std::string::npos) << serial;
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(run(8), serial) << "pool-8 repeat " << repeat;
  }
}

}  // namespace
}  // namespace fastfit::core

// Campaign execution: golden digest, trial determinism, and the response
// statistics the evaluation aggregates.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "apps/registry.hpp"
#include "apps/workload.hpp"
#include "core/campaign.hpp"

namespace fastfit::core {
namespace {

using namespace std::chrono_literals;

CampaignOptions small_options() {
  CampaignOptions opts;
  opts.nranks = 8;
  opts.trials_per_point = 6;
  opts.seed = 77;
  return opts;
}

TEST(Campaign, ProfilePopulatesEnumerationAndGolden) {
  const auto workload = apps::make_workload("LU");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  EXPECT_NE(campaign.golden_digest(), 0u);
  EXPECT_FALSE(campaign.enumeration().points.empty());
  EXPECT_GE(campaign.watchdog(), 150ms);
}

TEST(Campaign, UsingBeforeProfileThrows) {
  const auto workload = apps::make_workload("LU");
  Campaign campaign(*workload, small_options());
  EXPECT_THROW(campaign.enumeration(), InternalError);
  EXPECT_THROW(campaign.golden_digest(), InternalError);
  InjectionPoint point;
  EXPECT_THROW(campaign.measure(point, 1), InternalError);
}

TEST(Campaign, InvalidOptionsRejected) {
  const auto workload = apps::make_workload("LU");
  CampaignOptions bad = small_options();
  bad.trials_per_point = 0;
  EXPECT_THROW(Campaign(*workload, bad), ConfigError);
  bad = small_options();
  bad.nranks = 0;
  EXPECT_THROW(Campaign(*workload, bad), ConfigError);
}

TEST(Campaign, MeasureAggregatesTrials) {
  const auto workload = apps::make_workload("LU");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  const auto& points = campaign.enumeration().points;
  // Pick a count-parameter point: a mix of MPI_ERR / SEG_FAULT / SUCCESS.
  const auto it =
      std::find_if(points.begin(), points.end(), [](const InjectionPoint& p) {
        return p.param == mpi::Param::Count;
      });
  ASSERT_NE(it, points.end());
  const auto result = campaign.measure(*it, 10);
  EXPECT_EQ(result.trials, 10u);
  std::uint32_t total = 0;
  for (auto c : result.counts) total += c;
  EXPECT_EQ(total, 10u);
  EXPECT_GT(result.error_rate(), 0.0);  // count flips are rarely harmless
  EXPECT_EQ(campaign.trials_run(), 10u);
}

TEST(Campaign, PointResultMath) {
  PointResult r;
  r.record(inject::Outcome::Success);
  r.record(inject::Outcome::Success);
  r.record(inject::Outcome::MpiErr);
  r.record(inject::Outcome::SegFault);
  EXPECT_EQ(r.trials, 4u);
  EXPECT_DOUBLE_EQ(r.error_rate(), 0.5);
  EXPECT_DOUBLE_EQ(r.fraction(inject::Outcome::Success), 0.5);
  EXPECT_DOUBLE_EQ(r.fraction(inject::Outcome::MpiErr), 0.25);
  EXPECT_EQ(r.dominant(), inject::Outcome::Success);
  r.record(inject::Outcome::MpiErr);
  r.record(inject::Outcome::MpiErr);
  EXPECT_EQ(r.dominant(), inject::Outcome::MpiErr);
}

TEST(Campaign, RecvBufFaultsAreNearHarmless) {
  // Paper Fig 9: recvbuf flips have little impact (the collective
  // overwrites them).
  const auto workload = apps::make_workload("LU");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  const auto& points = campaign.enumeration().points;
  const auto it =
      std::find_if(points.begin(), points.end(), [](const InjectionPoint& p) {
        return p.param == mpi::Param::RecvBuf &&
               p.kind == mpi::CollectiveKind::Allreduce;
      });
  ASSERT_NE(it, points.end());
  const auto result = campaign.measure(*it, 12);
  EXPECT_GE(result.fraction(inject::Outcome::Success), 0.75);
}

TEST(Campaign, SameSeedSameCampaignStatistics) {
  const auto workload = apps::make_workload("LU");
  Campaign c1(*workload, small_options());
  Campaign c2(*workload, small_options());
  c1.profile();
  c2.profile();
  ASSERT_EQ(c1.enumeration().points.size(), c2.enumeration().points.size());
  const auto& p = c1.enumeration().points.front();
  const auto r1 = c1.measure(p, 8);
  const auto r2 = c2.measure(p, 8);
  EXPECT_EQ(r1.counts, r2.counts);
}

TEST(Campaign, MeasureIsIndependentOfCampaignHistory) {
  // The determinism contract in campaign.hpp: measure(point, n) yields the
  // same PointResult regardless of what was measured before it. (An older
  // implementation threaded a shared trial counter into the RNG, so a
  // point's result depended on every preceding measurement.)
  const auto workload = apps::make_workload("LU");
  Campaign fresh(*workload, small_options());
  Campaign busy(*workload, small_options());
  fresh.profile();
  busy.profile();
  const auto& points = fresh.enumeration().points;
  ASSERT_GE(points.size(), 3u);

  // `busy` measures two other points first; `fresh` goes straight to the
  // point under test.
  busy.measure(points[1], 5);
  busy.measure(points[2], 9);
  const auto direct = fresh.measure(points[0], 8);
  const auto after_history = busy.measure(points[0], 8);
  EXPECT_EQ(direct.counts, after_history.counts);

  // Re-measuring the same point in the same campaign also reproduces.
  EXPECT_EQ(fresh.measure(points[0], 8).counts, direct.counts);
}

// A workload whose ranks spin on an externally released gate, keeping a
// measure() call verifiably in flight for as long as the test needs.
class GatedWorkload final : public apps::Workload {
 public:
  std::string name() const override { return "gated"; }

  std::uint64_t run_rank(apps::AppContext& ctx) const override {
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ctx.trace.set_phase(trace::ExecPhase::Compute);
    trace::FunctionScope scope(ctx.trace, "kernel");
    const double total =
        ctx.mpi.allreduce_value(1.0 + ctx.mpi.rank(), mpi::kSum);
    return apps::digest_doubles(std::span<const double>(&total, 1), 9);
  }

  mutable std::atomic<bool> gate{true};
};

TEST(Campaign, SetMaxParallelTrialsThrowsWhileMeasuring) {
  GatedWorkload workload;
  CampaignOptions opts;
  opts.nranks = 2;
  opts.trials_per_point = 2;
  opts.seed = 7;
  opts.max_parallel_trials = 1;
  opts.watchdog = 30'000ms;  // the gate must not read as a hang
  Campaign campaign(workload, opts);
  campaign.profile();
  ASSERT_FALSE(campaign.enumeration().points.empty());
  EXPECT_FALSE(campaign.measuring());

  workload.gate.store(false, std::memory_order_release);
  std::thread measurer([&] {
    campaign.measure(campaign.enumeration().points[0], 1);
  });
  while (!campaign.measuring()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The documented race: resizing the pool mid-measure. Now an error.
  EXPECT_THROW(campaign.set_max_parallel_trials(4), InternalError);
  workload.gate.store(true, std::memory_order_release);
  measurer.join();

  // Between measures the knob works, and the next measure honours it.
  EXPECT_FALSE(campaign.measuring());
  campaign.set_max_parallel_trials(2);
  EXPECT_EQ(campaign.parallel_trials(), 2u);
}

TEST(Campaign, GoldenDigestStableAcrossCampaigns) {
  const auto workload = apps::make_workload("MG");
  Campaign c1(*workload, small_options());
  Campaign c2(*workload, small_options());
  c1.profile();
  c2.profile();
  EXPECT_EQ(c1.golden_digest(), c2.golden_digest());
}

}  // namespace
}  // namespace fastfit::core

// Campaign execution: golden digest, trial determinism, and the response
// statistics the evaluation aggregates.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.hpp"
#include "apps/workload.hpp"
#include "core/campaign.hpp"
#include "telemetry/recorder.hpp"

namespace tel = fastfit::telemetry;

namespace fastfit::core {
namespace {

using namespace std::chrono_literals;

CampaignOptions small_options() {
  CampaignOptions opts;
  opts.nranks = 8;
  opts.trials_per_point = 6;
  opts.seed = 77;
  return opts;
}

TEST(Campaign, ProfilePopulatesEnumerationAndGolden) {
  const auto workload = apps::make_workload("LU");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  EXPECT_NE(campaign.golden_digest(), 0u);
  EXPECT_FALSE(campaign.enumeration().points.empty());
  EXPECT_GE(campaign.watchdog(), 150ms);
}

TEST(Campaign, UsingBeforeProfileThrows) {
  const auto workload = apps::make_workload("LU");
  Campaign campaign(*workload, small_options());
  EXPECT_THROW(campaign.enumeration(), InternalError);
  EXPECT_THROW(campaign.golden_digest(), InternalError);
  InjectionPoint point;
  EXPECT_THROW(campaign.measure(point, 1), InternalError);
}

TEST(Campaign, InvalidOptionsRejected) {
  const auto workload = apps::make_workload("LU");
  CampaignOptions bad = small_options();
  bad.trials_per_point = 0;
  EXPECT_THROW(Campaign(*workload, bad), ConfigError);
  bad = small_options();
  bad.nranks = 0;
  EXPECT_THROW(Campaign(*workload, bad), ConfigError);
}

TEST(Campaign, MeasureAggregatesTrials) {
  const auto workload = apps::make_workload("LU");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  const auto& points = campaign.enumeration().points;
  // Pick a count-parameter point: a mix of MPI_ERR / SEG_FAULT / SUCCESS.
  const auto it =
      std::find_if(points.begin(), points.end(), [](const InjectionPoint& p) {
        return p.param == mpi::Param::Count;
      });
  ASSERT_NE(it, points.end());
  const auto result = campaign.measure(*it, 10);
  EXPECT_EQ(result.trials, 10u);
  std::uint32_t total = 0;
  for (auto c : result.counts) total += c;
  EXPECT_EQ(total, 10u);
  EXPECT_GT(result.error_rate(), 0.0);  // count flips are rarely harmless
  EXPECT_EQ(campaign.trials_run(), 10u);
}

TEST(Campaign, PointResultMath) {
  PointResult r;
  r.record(inject::Outcome::Success);
  r.record(inject::Outcome::Success);
  r.record(inject::Outcome::MpiErr);
  r.record(inject::Outcome::SegFault);
  EXPECT_EQ(r.trials, 4u);
  EXPECT_DOUBLE_EQ(r.error_rate(), 0.5);
  EXPECT_DOUBLE_EQ(r.fraction(inject::Outcome::Success), 0.5);
  EXPECT_DOUBLE_EQ(r.fraction(inject::Outcome::MpiErr), 0.25);
  EXPECT_EQ(r.dominant(), inject::Outcome::Success);
  r.record(inject::Outcome::MpiErr);
  r.record(inject::Outcome::MpiErr);
  EXPECT_EQ(r.dominant(), inject::Outcome::MpiErr);
}

TEST(Campaign, RecvBufFaultsAreNearHarmless) {
  // Paper Fig 9: recvbuf flips have little impact (the collective
  // overwrites them).
  const auto workload = apps::make_workload("LU");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  const auto& points = campaign.enumeration().points;
  const auto it =
      std::find_if(points.begin(), points.end(), [](const InjectionPoint& p) {
        return p.param == mpi::Param::RecvBuf &&
               p.kind == mpi::CollectiveKind::Allreduce;
      });
  ASSERT_NE(it, points.end());
  const auto result = campaign.measure(*it, 12);
  EXPECT_GE(result.fraction(inject::Outcome::Success), 0.75);
}

TEST(Campaign, SameSeedSameCampaignStatistics) {
  const auto workload = apps::make_workload("LU");
  Campaign c1(*workload, small_options());
  Campaign c2(*workload, small_options());
  c1.profile();
  c2.profile();
  ASSERT_EQ(c1.enumeration().points.size(), c2.enumeration().points.size());
  const auto& p = c1.enumeration().points.front();
  const auto r1 = c1.measure(p, 8);
  const auto r2 = c2.measure(p, 8);
  EXPECT_EQ(r1.counts, r2.counts);
}

TEST(Campaign, MeasureIsIndependentOfCampaignHistory) {
  // The determinism contract in campaign.hpp: measure(point, n) yields the
  // same PointResult regardless of what was measured before it. (An older
  // implementation threaded a shared trial counter into the RNG, so a
  // point's result depended on every preceding measurement.)
  const auto workload = apps::make_workload("LU");
  Campaign fresh(*workload, small_options());
  Campaign busy(*workload, small_options());
  fresh.profile();
  busy.profile();
  const auto& points = fresh.enumeration().points;
  ASSERT_GE(points.size(), 3u);

  // `busy` measures two other points first; `fresh` goes straight to the
  // point under test.
  busy.measure(points[1], 5);
  busy.measure(points[2], 9);
  const auto direct = fresh.measure(points[0], 8);
  const auto after_history = busy.measure(points[0], 8);
  EXPECT_EQ(direct.counts, after_history.counts);

  // Re-measuring the same point in the same campaign also reproduces.
  EXPECT_EQ(fresh.measure(points[0], 8).counts, direct.counts);
}

// A workload whose ranks spin on an externally released gate, keeping a
// measure() call verifiably in flight for as long as the test needs.
class GatedWorkload final : public apps::Workload {
 public:
  std::string name() const override { return "gated"; }

  std::uint64_t run_rank(apps::AppContext& ctx) const override {
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ctx.trace.set_phase(trace::ExecPhase::Compute);
    trace::FunctionScope scope(ctx.trace, "kernel");
    const double total =
        ctx.mpi.allreduce_value(1.0 + ctx.mpi.rank(), mpi::kSum);
    return apps::digest_doubles(std::span<const double>(&total, 1), 9);
  }

  mutable std::atomic<bool> gate{true};
};

TEST(Campaign, SetMaxParallelTrialsThrowsWhileMeasuring) {
  GatedWorkload workload;
  CampaignOptions opts;
  opts.nranks = 2;
  opts.trials_per_point = 2;
  opts.seed = 7;
  opts.max_parallel_trials = 1;
  opts.watchdog = 30'000ms;  // the gate must not read as a hang
  Campaign campaign(workload, opts);
  campaign.profile();
  ASSERT_FALSE(campaign.enumeration().points.empty());
  EXPECT_FALSE(campaign.measuring());

  workload.gate.store(false, std::memory_order_release);
  std::thread measurer([&] {
    campaign.measure(campaign.enumeration().points[0], 1);
  });
  while (!campaign.measuring()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The documented race: resizing the pool mid-measure. Now an error.
  EXPECT_THROW(campaign.set_max_parallel_trials(4), InternalError);
  workload.gate.store(true, std::memory_order_release);
  measurer.join();

  // Between measures the knob works, and the next measure honours it.
  EXPECT_FALSE(campaign.measuring());
  campaign.set_max_parallel_trials(2);
  EXPECT_EQ(campaign.parallel_trials(), 2u);
}

TEST(Campaign, GoldenDigestStableAcrossCampaigns) {
  const auto workload = apps::make_workload("MG");
  Campaign c1(*workload, small_options());
  Campaign c2(*workload, small_options());
  c1.profile();
  c2.profile();
  EXPECT_EQ(c1.golden_digest(), c2.golden_digest());
}

// --- engine parity: fibers vs thread-per-rank must be invisible ---------

struct EngineRun {
  std::vector<PointResult> results;
  std::string journal_bytes;
  std::map<std::string, std::uint64_t> trial_counters;
};

// Drops the forensic autopsy field ("a") from a journal line. Autopsies
// embed raw buffer addresses (ASLR) and a mid-flight census of the other
// ranks' phases, neither of which reproduces between two runs even on
// the same engine; everything the resume path actually reads — the
// (point, trial, outcome) triple, labels, quarantines, the model field —
// must match byte for byte across engines.
std::string strip_autopsies(const std::string& journal) {
  std::string out;
  out.reserve(journal.size());
  std::size_t pos = 0;
  while (pos < journal.size()) {
    const auto start = journal.find(",\"a\":\"", pos);
    if (start == std::string::npos) {
      out.append(journal, pos, std::string::npos);
      break;
    }
    out.append(journal, pos, start - pos);
    std::size_t end = start + 6;  // first payload byte
    while (end < journal.size() &&
           (journal[end] != '"' || journal[end - 1] == '\\')) {
      ++end;
    }
    pos = end + 1;  // past the closing quote
  }
  return out;
}

EngineRun run_on_engine(mpi::WorldEngine engine, const std::string& tag) {
  auto& rec = tel::Recorder::instance();
  rec.enable();
  rec.reset();
  const auto workload = apps::make_workload("LU");
  auto opts = small_options();
  opts.engine = engine;
  Campaign campaign(*workload, opts);
  campaign.profile();
  const std::string path =
      ::testing::TempDir() + "fastfit_engine_parity_" + tag;
  std::remove(path.c_str());
  std::remove((path + ".recording").c_str());
  campaign.attach_journal(path, JournalMode::Create);
  const auto& points = campaign.enumeration().points;
  const auto n = std::min<std::size_t>(4, points.size());
  EngineRun run;
  run.results = campaign.measure_many(
      std::span<const InjectionPoint>(points.data(), n), 3);
  campaign.detach_journal();
  std::ifstream in(path, std::ios::binary);
  run.journal_bytes.assign(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
  for (const auto& c : rec.metrics().counters) {
    if (c.name == "fastfit_trials_total") {
      run.trial_counters[c.labels] = c.value;
    }
  }
  rec.reset();
  rec.disable();
  return run;
}

TEST(Campaign, EngineParityIsByteIdentical) {
  // The contract the whole PR hangs on: swapping the rank substrate is
  // invisible in every output — per-point outcome counts, the trial
  // journal byte for byte, and every fastfit_trials_total series.
  const auto fibers = run_on_engine(mpi::WorldEngine::Fibers, "fibers");
  const auto threads = run_on_engine(mpi::WorldEngine::Threads, "threads");

  ASSERT_EQ(fibers.results.size(), threads.results.size());
  for (std::size_t i = 0; i < fibers.results.size(); ++i) {
    EXPECT_EQ(fibers.results[i].counts, threads.results[i].counts)
        << "point " << i;
    EXPECT_EQ(fibers.results[i].trials, threads.results[i].trials);
  }
  EXPECT_FALSE(fibers.journal_bytes.empty());
  EXPECT_EQ(strip_autopsies(fibers.journal_bytes),
            strip_autopsies(threads.journal_bytes));
  EXPECT_FALSE(fibers.trial_counters.empty());
  EXPECT_EQ(fibers.trial_counters, threads.trial_counters);
}

TEST(Campaign, FiberEnginePool8MatchesSerialBitIdentical) {
  const auto workload = apps::make_workload("LU");
  auto opts = small_options();
  opts.engine = mpi::WorldEngine::Fibers;
  opts.max_parallel_trials = 1;

  Campaign serial(*workload, opts);
  serial.profile();
  const auto& points = serial.enumeration().points;
  const auto n = std::min<std::size_t>(4, points.size());
  const auto expected = serial.measure_many(
      std::span<const InjectionPoint>(points.data(), n), 6);

  opts.max_parallel_trials = 8;
  Campaign pooled(*workload, opts);
  pooled.profile();
  const auto got = pooled.measure_many(
      std::span<const InjectionPoint>(pooled.enumeration().points.data(), n),
      6);

  ASSERT_EQ(expected.size(), got.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].counts, got[i].counts) << "point " << i;
    EXPECT_EQ(expected[i].trials, got[i].trials) << "point " << i;
    EXPECT_EQ(expected[i].exec.quarantined, got[i].exec.quarantined);
  }
  EXPECT_TRUE(pooled.health().clean());
}

}  // namespace
}  // namespace fastfit::core

// Physics/numerics invariants of the workloads: the substrates must be
// *correct miniatures*, not just programs that happen to call collectives
// — otherwise the sensitivity results measure artifacts.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/fft.hpp"
#include "apps/ft.hpp"
#include "apps/is.hpp"
#include "apps/lu.hpp"
#include "apps/mg.hpp"
#include "apps/minimd.hpp"
#include "support/rng.hpp"

namespace fastfit::apps {
namespace {

using namespace std::chrono_literals;

mpi::WorldOptions opts(int n) {
  mpi::WorldOptions o;
  o.nranks = n;
  o.watchdog = 30000ms;
  return o;
}

TEST(Fft, RoundTripRecoversSignal) {
  RngStream rng(5, "fft");
  std::vector<std::complex<double>> signal(64);
  for (auto& c : signal) c = {rng.uniform(), rng.uniform()};
  auto work = signal;
  fft1d(work, -1);
  fft1d(work, +1);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    EXPECT_NEAR(work[i].real() / 64.0, signal[i].real(), 1e-12);
    EXPECT_NEAR(work[i].imag() / 64.0, signal[i].imag(), 1e-12);
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  RngStream rng(6, "fft");
  std::vector<std::complex<double>> signal(128);
  double time_energy = 0.0;
  for (auto& c : signal) {
    c = {rng.normal(), rng.normal()};
    time_energy += std::norm(c);
  }
  fft1d(signal, -1);
  double freq_energy = 0.0;
  for (const auto& c : signal) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / 128.0, time_energy, 1e-9 * time_energy);
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<std::complex<double>> delta(16, {0.0, 0.0});
  delta[0] = {1.0, 0.0};
  fft1d(delta, -1);
  for (const auto& c : delta) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, NonPowerOfTwoRejected) {
  std::vector<std::complex<double>> bad(12);
  EXPECT_THROW(fft1d(bad, -1), InternalError);
}

TEST(PhysicsFT, ChecksumDecaysUnderDiffusion) {
  // The spectral solver damps every non-zero mode: the field's deviation
  // from its mean must shrink monotonically across iterations. Verify via
  // two runs with different iteration counts giving consistent digests is
  // weak; instead check the solver is stable (clean) at larger alpha.
  FtConfig config;
  config.alpha = 5e-3;
  config.iterations = 4;
  MiniFT workload(config);
  trace::ContextRegistry contexts(8);
  EXPECT_TRUE(run_job(workload, opts(8), nullptr, contexts).world.clean());
}

TEST(PhysicsMG, ResidualDropsByOrdersOfMagnitude) {
  // MG's own error handling already asserts non-divergence; this checks
  // actual convergence: more V-cycles must keep the run clean (the
  // internal check would abort on stagnation-to-divergence).
  MgConfig config;
  config.vcycles = 8;
  MiniMG workload(config);
  trace::ContextRegistry contexts(8);
  EXPECT_TRUE(run_job(workload, opts(8), nullptr, contexts).world.clean());
}

TEST(PhysicsLU, MoreIterationsStayStable) {
  LuConfig config;
  config.iterations = 20;
  MiniLU workload(config);
  trace::ContextRegistry contexts(8);
  EXPECT_TRUE(run_job(workload, opts(8), nullptr, contexts).world.clean());
}

TEST(PhysicsMD, LongerRunsConserveAtomsAndStayFinite) {
  MdConfig config;
  config.steps = 48;
  MiniMD workload(config);
  trace::ContextRegistry contexts(8);
  // The run itself asserts atom conservation and finite energies every
  // step through its error handling; a clean result is the invariant.
  EXPECT_TRUE(run_job(workload, opts(8), nullptr, contexts).world.clean());
}

TEST(PhysicsMD, DifferentDensitiesStayStable) {
  for (double density : {0.3, 0.6, 0.8}) {
    MdConfig config;
    config.density = density;
    MiniMD workload(config);
    trace::ContextRegistry contexts(8);
    EXPECT_TRUE(run_job(workload, opts(8), nullptr, contexts).world.clean())
        << "density " << density;
  }
}

TEST(PhysicsIS, LargerKeySpacesStillVerify) {
  for (std::int32_t max_key : {64, 1 << 11, 1 << 16}) {
    IsConfig config;
    config.max_key = max_key;
    MiniIS workload(config);
    trace::ContextRegistry contexts(8);
    EXPECT_TRUE(run_job(workload, opts(8), nullptr, contexts).world.clean())
        << "max_key " << max_key;
  }
}

TEST(PhysicsFT, GridShapeMustMatchRankCount) {
  FtConfig config;
  config.nz = 30;  // not divisible by 8
  MiniFT workload(config);
  trace::ContextRegistry contexts(8);
  EXPECT_THROW(run_job(workload, opts(8), nullptr, contexts), ConfigError);
}

TEST(PhysicsMG, GridMustDivideByRanks) {
  MgConfig config;
  config.npoints = 500;  // not divisible by 8
  MiniMG workload(config);
  trace::ContextRegistry contexts(8);
  EXPECT_THROW(run_job(workload, opts(8), nullptr, contexts), ConfigError);
}

}  // namespace
}  // namespace fastfit::apps

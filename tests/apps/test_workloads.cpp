// Fault-free workload validation: every bundled workload must run cleanly,
// deterministically, and with the annotations the pruning layers rely on.

#include <gtest/gtest.h>

#include <limits>

#include "apps/registry.hpp"
#include "apps/workload.hpp"
#include "profile/profiler.hpp"
#include "profile/queries.hpp"
#include "trace/similarity.hpp"

namespace fastfit::apps {
namespace {

using namespace std::chrono_literals;

mpi::WorldOptions opts(int n) {
  mpi::WorldOptions o;
  o.nranks = n;
  o.watchdog = 20000ms;
  o.seed = 1234;
  return o;
}

class WorkloadSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSweep, RunsCleanAt8Ranks) {
  const auto workload = make_workload(GetParam());
  trace::ContextRegistry contexts(8);
  const auto result = run_job(*workload, opts(8), nullptr, contexts);
  ASSERT_TRUE(result.world.clean())
      << result.world.event->message;
  EXPECT_NE(result.digest, 0u);
}

TEST_P(WorkloadSweep, RunsCleanAt32Ranks) {
  const auto workload = make_workload(GetParam());
  trace::ContextRegistry contexts(32);
  const auto result = run_job(*workload, opts(32), nullptr, contexts);
  ASSERT_TRUE(result.world.clean()) << result.world.event->message;
  EXPECT_NE(result.digest, 0u);
}

TEST_P(WorkloadSweep, DigestIsDeterministic) {
  const auto workload = make_workload(GetParam());
  trace::ContextRegistry c1(8), c2(8);
  const auto r1 = run_job(*workload, opts(8), nullptr, c1);
  const auto r2 = run_job(*workload, opts(8), nullptr, c2);
  ASSERT_TRUE(r1.world.clean());
  ASSERT_TRUE(r2.world.clean());
  EXPECT_EQ(r1.digest, r2.digest);
}

TEST_P(WorkloadSweep, DigestDependsOnInput) {
  const auto workload = make_workload(GetParam());
  trace::ContextRegistry c1(8), c2(8);
  auto o1 = opts(8);
  auto o2 = opts(8);
  o2.seed = 999;
  const auto r1 = run_job(*workload, o1, nullptr, c1);
  const auto r2 = run_job(*workload, o2, nullptr, c2);
  ASSERT_TRUE(r1.world.clean());
  ASSERT_TRUE(r2.world.clean());
  EXPECT_NE(r1.digest, r2.digest);
}

TEST_P(WorkloadSweep, ProfilesWithAnnotations) {
  const auto workload = make_workload(GetParam());
  trace::ContextRegistry contexts(8);
  profile::Profiler profiler(contexts);
  const auto result = run_job(*workload, opts(8), &profiler, contexts);
  ASSERT_TRUE(result.world.clean()) << result.world.event->message;

  // Every rank must have profiled at least one collective site with a
  // stack deeper than main, and the call graph must not be empty.
  for (int r = 0; r < 8; ++r) {
    const auto& prof = profiler.rank(r);
    ASSERT_FALSE(prof.sites.empty()) << "rank " << r;
    bool any_depth = false;
    for (const auto& [id, site] : prof.sites) {
      EXPECT_GT(profile::n_invocations(site), 0u);
      if (profile::mean_stack_depth(site) > 0) any_depth = true;
    }
    EXPECT_TRUE(any_depth);
    EXPECT_GT(contexts.of(r).graph().edge_count(), 0u);
    EXPECT_GT(contexts.of(r).comm_trace().size(), 0u);
  }
}

TEST_P(WorkloadSweep, EquivalenceClassesAreFew) {
  // SPMD kernels must collapse to a handful of classes (the semantic
  // pruning premise); root-role asymmetry allows a few extra classes.
  const auto workload = make_workload(GetParam());
  trace::ContextRegistry contexts(16);
  profile::Profiler profiler(contexts);
  const auto result = run_job(*workload, opts(16), &profiler, contexts);
  ASSERT_TRUE(result.world.clean());
  const auto classes = trace::equivalence_classes(contexts);
  EXPECT_GE(classes.size(), 1u);
  EXPECT_LE(classes.size(), 4u) << "pruning premise violated";
  // Classes partition the ranks.
  std::size_t members = 0;
  for (const auto& cls : classes) members += cls.ranks.size();
  EXPECT_EQ(members, 16u);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSweep,
                         ::testing::Values("IS", "FT", "MG", "LU", "CG", "EP",
                                           "miniMD"),
                         [](const auto& info) { return info.param; });

TEST(WorkloadRegistry, KnowsAllNamesAndRejectsUnknown) {
  for (const auto& name : workload_names()) {
    EXPECT_EQ(make_workload(name)->name(), name);
  }
  EXPECT_EQ(make_workload("LAMMPS")->name(), "miniMD");
  EXPECT_THROW(make_workload("BT"), ConfigError);
}

TEST(WorkloadDigests, CombineOrderSensitive) {
  EXPECT_NE(combine_digests({1, 2}), combine_digests({2, 1}));
  EXPECT_EQ(combine_digests({1, 2}), combine_digests({1, 2}));
}

TEST(WorkloadDigests, DoubleQuantization) {
  const std::vector<double> a{1.23456, 7.0};
  const std::vector<double> b{1.23457, 7.0};  // differs at 1e-5
  EXPECT_EQ(digest_doubles(a, 3), digest_doubles(b, 3));
  EXPECT_NE(digest_doubles(a, 6), digest_doubles(b, 6));
}

TEST(WorkloadDigests, NonFiniteValuesNeverAliasFinite) {
  const std::vector<double> nan_v{std::numeric_limits<double>::quiet_NaN()};
  const std::vector<double> zero{0.0};
  const std::vector<double> inf_v{std::numeric_limits<double>::infinity()};
  EXPECT_NE(digest_doubles(nan_v, 2), digest_doubles(zero, 2));
  EXPECT_NE(digest_doubles(inf_v, 2), digest_doubles(zero, 2));
  EXPECT_NE(digest_doubles(inf_v, 2), digest_doubles(nan_v, 2));
}

TEST(WorkloadDigests, NegativeZeroFoldsOntoZero) {
  const std::vector<double> neg{-0.0};
  const std::vector<double> pos{0.0};
  EXPECT_EQ(digest_doubles(neg, 2), digest_doubles(pos, 2));
}

TEST(WorkloadMiniMD, ErrHalFractionIsHigh) {
  // The paper: >40% of LAMMPS' MPI_Allreduce calls are error handling.
  const auto workload = make_workload("miniMD");
  trace::ContextRegistry contexts(8);
  profile::Profiler profiler(contexts);
  ASSERT_TRUE(run_job(*workload, opts(8), &profiler, contexts).world.clean());
  EXPECT_GT(profile::errhal_fraction(profiler, mpi::CollectiveKind::Allreduce),
            0.40);
}

TEST(WorkloadMiniMD, AllreduceDominatesTheMix) {
  // The paper: >84% of LAMMPS' collectives are MPI_Allreduce.
  const auto workload = make_workload("miniMD");
  trace::ContextRegistry contexts(8);
  profile::Profiler profiler(contexts);
  ASSERT_TRUE(run_job(*workload, opts(8), &profiler, contexts).world.clean());
  EXPECT_GT(profile::collective_fraction(profiler,
                                         mpi::CollectiveKind::Allreduce),
            0.5);
}

TEST(WorkloadFT, RootRankFormsItsOwnClass) {
  // FT's MPI_Reduce gives rank 0 a distinct communication trace — the
  // asymmetry Fig 2 of the paper builds on.
  const auto workload = make_workload("FT");
  trace::ContextRegistry contexts(8);
  profile::Profiler profiler(contexts);
  ASSERT_TRUE(run_job(*workload, opts(8), &profiler, contexts).world.clean());
  const auto classes = trace::equivalence_classes(contexts);
  ASSERT_GE(classes.size(), 2u);
  EXPECT_EQ(classes.front().ranks.size(), 1u);
  EXPECT_EQ(classes.front().representative(), 0);
}

}  // namespace
}  // namespace fastfit::apps

// Exhaustive (op x datatype) reduction sweep: every supported pair must
// agree with a scalar reference computation on random inputs, and every
// unsupported pair must be rejected — the full surface a corrupted `op`
// or `datatype` handle can land on.

#include <gtest/gtest.h>

#include <cstring>

#include "minimpi/datatype.hpp"
#include "minimpi/op.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fastfit::mpi {
namespace {

constexpr Op kAllOps[] = {kSum, kProd, kMin, kMax, kBand,
                          kBor, kBxor, kLand, kLor};
constexpr Datatype kAllTypes[] = {kChar, kByte, kInt32, kUint32,
                                  kInt64, kUint64, kFloat, kDouble};

template <typename T>
T reference(Op op, T a, T b) {
  if (op == kSum) return static_cast<T>(b + a);
  if (op == kProd) return static_cast<T>(b * a);
  if (op == kMin) return std::min(a, b);
  if (op == kMax) return std::max(a, b);
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    if (op == kBand) return static_cast<T>(static_cast<U>(b) & static_cast<U>(a));
    if (op == kBor) return static_cast<T>(static_cast<U>(b) | static_cast<U>(a));
    if (op == kBxor) return static_cast<T>(static_cast<U>(b) ^ static_cast<U>(a));
    if (op == kLand) return static_cast<T>((b != 0) && (a != 0));
    if (op == kLor) return static_cast<T>((b != 0) || (a != 0));
  }
  ADD_FAILURE() << "reference: unsupported combination";
  return T{};
}

template <typename T>
void check_pair(Op op, Datatype dtype, RngStream& rng) {
  constexpr std::size_t kCount = 16;
  std::vector<T> incoming(kCount);
  std::vector<T> accum(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    incoming[i] = static_cast<T>(rng.uniform_u64(0, 120));
    accum[i] = static_cast<T>(rng.uniform_u64(0, 120));
  }
  std::vector<T> expected(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    expected[i] = reference<T>(op, incoming[i], accum[i]);
  }
  std::vector<std::byte> in_bytes(kCount * sizeof(T));
  std::vector<std::byte> acc_bytes(kCount * sizeof(T));
  std::memcpy(in_bytes.data(), incoming.data(), in_bytes.size());
  std::memcpy(acc_bytes.data(), accum.data(), acc_bytes.size());
  apply(op, dtype, in_bytes, acc_bytes, kCount);
  std::vector<T> actual(kCount);
  std::memcpy(actual.data(), acc_bytes.data(), acc_bytes.size());
  EXPECT_EQ(actual, expected) << op_name(op) << " over "
                              << datatype_name(dtype);
}

TEST(OpProperties, EverySupportedPairMatchesReference) {
  RngStream rng(90210, "op-sweep");
  for (Op op : kAllOps) {
    for (Datatype dtype : kAllTypes) {
      if (!op_supports(op, dtype)) continue;
      if (dtype == kChar) check_pair<char>(op, dtype, rng);
      else if (dtype == kByte) check_pair<unsigned char>(op, dtype, rng);
      else if (dtype == kInt32) check_pair<std::int32_t>(op, dtype, rng);
      else if (dtype == kUint32) check_pair<std::uint32_t>(op, dtype, rng);
      else if (dtype == kInt64) check_pair<std::int64_t>(op, dtype, rng);
      else if (dtype == kUint64) check_pair<std::uint64_t>(op, dtype, rng);
      else if (dtype == kFloat) check_pair<float>(op, dtype, rng);
      else if (dtype == kDouble) check_pair<double>(op, dtype, rng);
    }
  }
}

TEST(OpProperties, EveryUnsupportedPairRejected) {
  std::vector<std::byte> buf(8);
  int rejected = 0;
  for (Op op : kAllOps) {
    for (Datatype dtype : kAllTypes) {
      if (op_supports(op, dtype)) continue;
      EXPECT_THROW(apply(op, dtype, buf, buf, 1), MpiError)
          << op_name(op) << " over " << datatype_name(dtype);
      ++rejected;
    }
  }
  // Exactly the 5 bitwise/logical ops over the 2 floating types.
  EXPECT_EQ(rejected, 10);
}

TEST(OpProperties, IdentityElements) {
  // accum = identity, incoming = x  =>  result = x, for each op's
  // identity element.
  RngStream rng(777, "identity");
  for (int round = 0; round < 20; ++round) {
    const auto x = static_cast<std::int64_t>(rng.uniform_u64(0, 1000));
    const auto apply_one = [&](Op op, std::int64_t init) {
      std::vector<std::byte> in(sizeof(std::int64_t));
      std::vector<std::byte> acc(sizeof(std::int64_t));
      std::memcpy(in.data(), &x, sizeof(x));
      std::memcpy(acc.data(), &init, sizeof(init));
      apply(op, kInt64, in, acc, 1);
      std::int64_t out;
      std::memcpy(&out, acc.data(), sizeof(out));
      return out;
    };
    EXPECT_EQ(apply_one(kSum, 0), x);
    EXPECT_EQ(apply_one(kProd, 1), x);
    EXPECT_EQ(apply_one(kMax, std::numeric_limits<std::int64_t>::min()), x);
    EXPECT_EQ(apply_one(kMin, std::numeric_limits<std::int64_t>::max()), x);
    EXPECT_EQ(apply_one(kBor, 0), x);
    EXPECT_EQ(apply_one(kBxor, 0), x);
    EXPECT_EQ(apply_one(kBand, -1), x);
  }
}

TEST(OpProperties, AssociativityOnIntegers) {
  RngStream rng(888, "assoc");
  for (Op op : {kSum, kProd, kMin, kMax, kBand, kBor, kBxor, kLand, kLor}) {
    for (int round = 0; round < 10; ++round) {
      const auto a = static_cast<std::int32_t>(rng.uniform_u64(0, 50));
      const auto b = static_cast<std::int32_t>(rng.uniform_u64(0, 50));
      const auto c = static_cast<std::int32_t>(rng.uniform_u64(0, 50));
      EXPECT_EQ(reference<std::int32_t>(
                    op, reference<std::int32_t>(op, a, b), c),
                reference<std::int32_t>(
                    op, a, reference<std::int32_t>(op, b, c)))
          << op_name(op);
    }
  }
}

}  // namespace
}  // namespace fastfit::mpi

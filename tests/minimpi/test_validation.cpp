// Per-kind validation coverage: every collective must reject each class
// of invalid argument with the right MPI error code, and must respect the
// MPI significance rules (parameters that this rank never reads are not
// validated).

#include <gtest/gtest.h>

#include "minimpi/mpi.hpp"

namespace fastfit::mpi {
namespace {

using namespace std::chrono_literals;

WorldOptions opts(int n) {
  WorldOptions o;
  o.nranks = n;
  o.watchdog = 2000ms;
  return o;
}

constexpr auto kBadType = static_cast<Datatype>(0xBAD);
constexpr auto kBadOp = static_cast<Op>(0xBAD);
constexpr auto kBadComm = static_cast<Comm>(0xBAD);

/// Runs `body` on every rank of a 4-rank world and expects the given MPI
/// error code as the initiating event.
template <typename Body>
void expect_mpi_error(MpiErrc code, Body body) {
  World world(opts(4));
  const auto result = world.run([&](Mpi& mpi) { body(mpi); });
  ASSERT_FALSE(result.clean());
  ASSERT_EQ(result.event->type, EventType::MpiErr);
  EXPECT_EQ(*result.event->mpi_code, code);
}

TEST(Validation, BcastRejectsEachBadArgument) {
  expect_mpi_error(MpiErrc::InvalidCount, [](Mpi& mpi) {
    RegisteredBuffer<double> b(mpi.registry(), 4);
    mpi.bcast(b.data(), -2, kDouble, 0);
  });
  expect_mpi_error(MpiErrc::InvalidDatatype, [](Mpi& mpi) {
    RegisteredBuffer<double> b(mpi.registry(), 4);
    mpi.bcast(b.data(), 4, kBadType, 0);
  });
  expect_mpi_error(MpiErrc::InvalidRoot, [](Mpi& mpi) {
    RegisteredBuffer<double> b(mpi.registry(), 4);
    mpi.bcast(b.data(), 4, kDouble, 99);
  });
  expect_mpi_error(MpiErrc::InvalidRoot, [](Mpi& mpi) {
    RegisteredBuffer<double> b(mpi.registry(), 4);
    mpi.bcast(b.data(), 4, kDouble, -1);
  });
  expect_mpi_error(MpiErrc::InvalidComm, [](Mpi& mpi) {
    RegisteredBuffer<double> b(mpi.registry(), 4);
    mpi.bcast(b.data(), 4, kDouble, 0, kBadComm);
  });
}

TEST(Validation, ReduceFamilyRejectsBadOp) {
  expect_mpi_error(MpiErrc::InvalidOp, [](Mpi& mpi) {
    RegisteredBuffer<double> s(mpi.registry(), 2);
    RegisteredBuffer<double> r(mpi.registry(), 2);
    mpi.reduce(s.data(), r.data(), 2, kDouble, kBadOp, 0);
  });
  expect_mpi_error(MpiErrc::InvalidOp, [](Mpi& mpi) {
    RegisteredBuffer<double> s(mpi.registry(), 2);
    RegisteredBuffer<double> r(mpi.registry(), 2);
    mpi.allreduce(s.data(), r.data(), 2, kDouble, kBadOp);
  });
  expect_mpi_error(MpiErrc::InvalidOp, [](Mpi& mpi) {
    RegisteredBuffer<double> s(mpi.registry(), 2);
    RegisteredBuffer<double> r(mpi.registry(), 2);
    mpi.scan(s.data(), r.data(), 2, kDouble, kBadOp);
  });
  // Bitwise op over floating point is also an op error.
  expect_mpi_error(MpiErrc::InvalidOp, [](Mpi& mpi) {
    RegisteredBuffer<double> s(mpi.registry(), 2);
    RegisteredBuffer<double> r(mpi.registry(), 2);
    mpi.allreduce(s.data(), r.data(), 2, kDouble, kBxor);
  });
}

TEST(Validation, GatherRecvArgsSignificantOnlyAtRoot) {
  // Invalid recv-side arguments at a NON-root rank must be ignored.
  World world(opts(4));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    RegisteredBuffer<std::int32_t> s(mpi.registry(), 2, mpi.rank());
    RegisteredBuffer<std::int32_t> r(mpi.registry(), 8);
    if (mpi.rank() == 0) {
      mpi.gather(s.data(), 2, kInt32, r.data(), 2, kInt32, 0);
    } else {
      mpi.gather(s.data(), 2, kInt32, nullptr, -7, kBadType, 0);
    }
  }).clean());
  // ...but at the root they are validated.
  expect_mpi_error(MpiErrc::InvalidDatatype, [](Mpi& mpi) {
    RegisteredBuffer<std::int32_t> s(mpi.registry(), 2, 1);
    RegisteredBuffer<std::int32_t> r(mpi.registry(), 8);
    mpi.gather(s.data(), 2, kInt32, r.data(), 2,
               mpi.rank() == 0 ? kBadType : kInt32, 0);
  });
}

TEST(Validation, ScatterSendArgsSignificantOnlyAtRoot) {
  World world(opts(4));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    RegisteredBuffer<std::int32_t> s(mpi.registry(), 8, 3);
    RegisteredBuffer<std::int32_t> r(mpi.registry(), 2);
    if (mpi.rank() == 1) {
      mpi.scatter(s.data(), 2, kInt32, r.data(), 2, kInt32, 1);
    } else {
      // Bad send-side args away from the root: insignificant.
      mpi.scatter(nullptr, -1, kBadType, r.data(), 2, kInt32, 1);
    }
  }).clean());
}

TEST(Validation, AlltoallvRejectsBadArrays) {
  expect_mpi_error(MpiErrc::InvalidCount, [](Mpi& mpi) {
    RegisteredBuffer<std::int32_t> s(mpi.registry(), 4);
    RegisteredBuffer<std::int32_t> r(mpi.registry(), 4);
    std::vector<std::int32_t> counts{1, 1, 1, -1};  // negative entry
    std::vector<std::int32_t> displs{0, 1, 2, 3};
    mpi.alltoallv(s.data(), counts, displs, kInt32, r.data(), counts, displs,
                  kInt32);
  });
  expect_mpi_error(MpiErrc::InvalidCount, [](Mpi& mpi) {
    RegisteredBuffer<std::int32_t> s(mpi.registry(), 4);
    RegisteredBuffer<std::int32_t> r(mpi.registry(), 4);
    std::vector<std::int32_t> short_counts{1, 1};  // wrong length
    std::vector<std::int32_t> displs{0, 1, 2, 3};
    std::vector<std::int32_t> ok{1, 1, 1, 1};
    mpi.alltoallv(s.data(), short_counts, displs, kInt32, r.data(), ok,
                  displs, kInt32);
  });
  expect_mpi_error(MpiErrc::InvalidCount, [](Mpi& mpi) {
    RegisteredBuffer<std::int32_t> s(mpi.registry(), 4);
    RegisteredBuffer<std::int32_t> r(mpi.registry(), 4);
    std::vector<std::int32_t> counts{1, 1, 1, 1};
    std::vector<std::int32_t> neg_displs{0, 1, 2, -3};
    mpi.alltoallv(s.data(), counts, neg_displs, kInt32, r.data(), counts,
                  neg_displs, kInt32);
  });
}

TEST(Validation, BarrierOnlyValidatesComm) {
  expect_mpi_error(MpiErrc::InvalidComm,
                   [](Mpi& mpi) { mpi.barrier(kBadComm); });
}

TEST(Validation, HugeCountFaultsAtPackTime) {
  // Validation passes (positive count, valid type); the registry catches
  // the access — SEG_FAULT, not MPI_ERR, matching real MPIs that do not
  // know buffer sizes.
  World world(opts(4));
  const auto result = world.run([](Mpi& mpi) {
    RegisteredBuffer<double> s(mpi.registry(), 4);
    RegisteredBuffer<double> r(mpi.registry(), 4);
    mpi.allreduce(s.data(), r.data(), 1 << 20, kDouble, kSum);
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::SegFault);
}

TEST(Validation, ReduceScatterBlockAndAllgathervChecks) {
  expect_mpi_error(MpiErrc::InvalidOp, [](Mpi& mpi) {
    RegisteredBuffer<std::int64_t> s(mpi.registry(), 8);
    RegisteredBuffer<std::int64_t> r(mpi.registry(), 2);
    mpi.reduce_scatter_block(s.data(), r.data(), 2, kInt64, kBadOp);
  });
  expect_mpi_error(MpiErrc::InvalidCount, [](Mpi& mpi) {
    RegisteredBuffer<std::int32_t> s(mpi.registry(), 1, 1);
    RegisteredBuffer<std::int32_t> r(mpi.registry(), 4);
    std::vector<std::int32_t> counts{1, 1, -1, 1};
    std::vector<std::int32_t> displs{0, 1, 2, 3};
    mpi.allgatherv(s.data(), 1, kInt32, r.data(), counts, displs, kInt32);
  });
}

}  // namespace
}  // namespace fastfit::mpi

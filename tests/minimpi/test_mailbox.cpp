#include "minimpi/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "support/error.hpp"

namespace fastfit::mpi {
namespace {

using namespace std::chrono_literals;

std::chrono::steady_clock::time_point soon(std::chrono::milliseconds d) {
  return std::chrono::steady_clock::now() + d;
}

Message make_msg(int source, std::uint64_t tag, std::size_t bytes = 0) {
  Message m;
  m.source = source;
  m.tag = tag;
  m.payload.resize(bytes);
  return m;
}

TEST(Mailbox, DeliverThenReceive) {
  PoisonState poison;
  Mailbox box(poison);
  box.deliver(make_msg(3, 42, 16));
  const auto m = box.receive(3, 42, soon(100ms));
  EXPECT_EQ(m.source, 3);
  EXPECT_EQ(m.tag, 42u);
  EXPECT_EQ(m.payload.size(), 16u);
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, MatchingIsBySourceAndTag) {
  PoisonState poison;
  Mailbox box(poison);
  box.deliver(make_msg(1, 10));
  box.deliver(make_msg(2, 10));
  box.deliver(make_msg(1, 20));
  const auto m = box.receive(1, 20, soon(100ms));
  EXPECT_EQ(m.source, 1);
  EXPECT_EQ(m.tag, 20u);
  EXPECT_EQ(box.pending(), 2u);  // non-matching stay queued
}

TEST(Mailbox, FifoAmongSameSourceAndTag) {
  PoisonState poison;
  Mailbox box(poison);
  box.deliver(make_msg(1, 5, 1));
  box.deliver(make_msg(1, 5, 2));
  EXPECT_EQ(box.receive(1, 5, soon(100ms)).payload.size(), 1u);
  EXPECT_EQ(box.receive(1, 5, soon(100ms)).payload.size(), 2u);
}

TEST(Mailbox, TimeoutRaisesSimTimeout) {
  PoisonState poison;
  Mailbox box(poison);
  EXPECT_THROW(box.receive(0, 1, soon(20ms)), SimTimeout);
}

TEST(Mailbox, CrossThreadDelivery) {
  PoisonState poison;
  Mailbox box(poison);
  std::thread producer([&] {
    std::this_thread::sleep_for(10ms);
    box.deliver(make_msg(7, 99, 8));
  });
  const auto m = box.receive(7, 99, soon(2000ms));
  EXPECT_EQ(m.source, 7);
  producer.join();
}

TEST(Mailbox, PoisonWakesWaiterWithWorldAborted) {
  PoisonState poison;
  Mailbox box(poison);
  std::thread killer([&] {
    std::this_thread::sleep_for(10ms);
    poison.poison();
    box.wake();
  });
  EXPECT_THROW(box.receive(0, 1, soon(5000ms)), WorldAborted);
  killer.join();
}

TEST(Mailbox, PoisonedBeforeWaitThrowsImmediately) {
  PoisonState poison;
  poison.poison();
  Mailbox box(poison);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(box.receive(0, 1, soon(5000ms)), WorldAborted);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 1000ms);
}

TEST(Mailbox, HasMatchIsExactOnSourceAndTag) {
  PoisonState poison;
  Mailbox box(poison);
  EXPECT_FALSE(box.has_match(1, 10));
  box.deliver(make_msg(1, 10));
  EXPECT_TRUE(box.has_match(1, 10));
  EXPECT_FALSE(box.has_match(1, 11));
  EXPECT_FALSE(box.has_match(2, 10));
  (void)box.receive(1, 10, soon(100ms));
  EXPECT_FALSE(box.has_match(1, 10));
}

TEST(Mailbox, WakeCannotSlipBetweenPoisonCheckAndWait) {
  // Regression stress for the lost-wakeup race: the poison notify used to
  // fire without the mailbox mutex, so it could land between a waiter's
  // poison check and its entry into the timed wait — parking the waiter
  // for the full deadline. With wake() taking the mutex the waiter must
  // observe the poison promptly on every iteration. Run under TSan in CI.
  for (int i = 0; i < 200; ++i) {
    PoisonState poison;
    Mailbox box(poison);
    const auto start = std::chrono::steady_clock::now();
    std::thread waiter([&] {
      EXPECT_THROW(box.receive(0, 1, soon(10000ms)), WorldAborted);
    });
    poison.poison();
    box.wake();
    waiter.join();
    // A missed wake would park the waiter for the full 10s deadline.
    EXPECT_LT(std::chrono::steady_clock::now() - start, 5000ms);
  }
}

}  // namespace
}  // namespace fastfit::mpi

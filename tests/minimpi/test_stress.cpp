// Stress and scale: the substrate is created and destroyed thousands of
// times per campaign; it must not leak synchronization state between
// worlds, and it must hold up at larger rank counts than the benchmarks
// default to.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "minimpi/mpi.hpp"
#include "minimpi/world.hpp"

namespace fastfit::mpi {
namespace {

using namespace std::chrono_literals;

TEST(Stress, TwoHundredSequentialWorlds) {
  for (int round = 0; round < 200; ++round) {
    WorldOptions o;
    o.nranks = 4;
    o.watchdog = 2000ms;
    o.seed = static_cast<std::uint64_t>(round);
    World world(o);
    const auto result = world.run([round](Mpi& mpi) {
      const auto v = mpi.allreduce_value<std::int32_t>(round, kSum);
      ASSERT_EQ(v, round * 4);
    });
    ASSERT_TRUE(result.clean()) << "round " << round;
  }
}

TEST(Stress, SixtyFourRankCollectives) {
  WorldOptions o;
  o.nranks = 64;
  o.watchdog = 20000ms;
  World world(o);
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const int n = mpi.size();
    mpi.barrier();
    const auto sum = mpi.allreduce_value<std::int64_t>(mpi.rank(), kSum);
    ASSERT_EQ(sum, static_cast<std::int64_t>(n) * (n - 1) / 2);
    RegisteredBuffer<std::int32_t> mine(mpi.registry(), 1, mpi.rank());
    RegisteredBuffer<std::int32_t> all(mpi.registry(),
                                       static_cast<std::size_t>(n));
    mpi.allgather(mine.data(), 1, kInt32, all.data(), 1, kInt32);
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r)], r);
    }
  }).clean());
}

TEST(Stress, FailuresInConsecutiveWorldsStayContained) {
  // Alternate failing and clean worlds: a poisoned world must not bleed
  // into its successor.
  for (int round = 0; round < 50; ++round) {
    WorldOptions o;
    o.nranks = 4;
    o.watchdog = 500ms;
    World world(o);
    const bool fail_this_round = (round % 2 == 0);
    const auto result = world.run([fail_this_round](Mpi& mpi) {
      if (fail_this_round && mpi.world_rank() == 1) {
        throw AppError("scripted failure");
      }
      mpi.barrier();
    });
    ASSERT_EQ(result.clean(), !fail_this_round) << "round " << round;
  }
}

TEST(Stress, DeepCollectiveSequences) {
  // 500 collectives back to back: the tag sequence space must not
  // collide or wrap into confusion.
  WorldOptions o;
  o.nranks = 4;
  o.watchdog = 20000ms;
  World world(o);
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    for (std::int32_t i = 0; i < 500; ++i) {
      const auto v = mpi.allreduce_value(i, kMax);
      ASSERT_EQ(v, i);
    }
  }).clean());
}

TEST(Stress, TwoFiftySixRankDivergenceAndDeadlockMatrix) {
  // Campaign-scale smoke on the fiber substrate (the default engine):
  // 256 ranks per world, one world per classic divergence shape. The
  // deadlock cells must resolve deterministically — "no runnable rank
  // and no queued message" — without consuming the watchdog budget.
  WorldOptions o;
  o.nranks = 256;
  o.watchdog = 60000ms;

  {  // clean: the control cell.
    World world(o);
    EXPECT_TRUE(world.run([](Mpi& mpi) {
      const auto sum = mpi.allreduce_value<std::int64_t>(mpi.rank(), kSum);
      ASSERT_EQ(sum, static_cast<std::int64_t>(256) * 255 / 2);
    }).clean());
  }

  {  // silent divergence: one corrupted contribution, everyone agrees on
     // the wrong answer — no hang, no error, just a wrong result.
    World world(o);
    std::int64_t sum = -1;
    const auto result = world.run([&sum](Mpi& mpi) {
      const std::int64_t mine =
          mpi.world_rank() == 91 ? mpi.rank() + 1 : mpi.rank();
      const auto v = mpi.allreduce_value<std::int64_t>(mine, kSum);
      if (mpi.world_rank() == 0) sum = v;
    });
    EXPECT_TRUE(result.clean());
    EXPECT_EQ(sum, static_cast<std::int64_t>(256) * 255 / 2 + 1);
  }

  const auto expect_deterministic_deadlock = [](const WorldResult& result,
                                                const char* cell) {
    ASSERT_FALSE(result.clean()) << cell;
    EXPECT_EQ(result.event->type, EventType::Timeout) << cell;
    ASSERT_TRUE(result.autopsy.has_value()) << cell;
    EXPECT_TRUE(result.autopsy->deterministic) << cell;
    EXPECT_EQ(result.leaked_threads, 0) << cell;
  };

  {  // divergent root: rank 37's binomial tree waits on a phantom parent.
    const auto t0 = std::chrono::steady_clock::now();
    World world(o);
    expect_deterministic_deadlock(world.run([](Mpi& mpi) {
      const std::int32_t root = mpi.world_rank() == 37 ? 1 : 0;
      (void)mpi.bcast_value<std::int32_t>(7, root);
    }), "divergent-root");
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    EXPECT_LT(ms, 30000.0);
  }

  {  // early exit: rank 200 skips the final collective entirely.
    World world(o);
    expect_deterministic_deadlock(world.run([](Mpi& mpi) {
      mpi.barrier();
      if (mpi.world_rank() == 200) return;
      mpi.barrier();
    }), "early-exit");
  }
}

std::size_t os_threads() {
  std::size_t n = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/task")) {
    (void)entry;
    ++n;
  }
  return n;
}

TEST(Stress, FiberPoolHoldsOsThreadCountAtLaneWidth) {
  // The tentpole invariant, stated as an OS fact: 256 ranks are fibers
  // multiplexed on their trial's thread, so a pool of 4 lanes running
  // 256-rank worlds holds the whole process at <= baseline + 4 threads —
  // not the 1024+ a thread-per-rank substrate would need.
  const std::size_t baseline = os_threads();
  std::atomic<std::size_t> peak{0};
  std::atomic<int> failures{0};
  auto lane = [&peak, &failures] {
    WorldOptions o;
    o.nranks = 256;
    o.watchdog = 60000ms;
    World world(o);
    const auto result = world.run([&peak, &failures](Mpi& mpi) {
      if (mpi.world_rank() == 0) {
        // Sampled mid-flight, from inside a rank fiber.
        std::size_t now = os_threads();
        std::size_t prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
      }
      const auto sum = mpi.allreduce_value<std::int64_t>(mpi.rank(), kSum);
      if (sum != static_cast<std::int64_t>(256) * 255 / 2) {
        failures.fetch_add(1);
      }
    });
    if (!result.clean()) failures.fetch_add(1);
  };
  std::vector<std::thread> lanes;
  lanes.reserve(4);
  for (int i = 0; i < 4; ++i) lanes.emplace_back(lane);
  for (auto& t : lanes) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(peak.load(), 0u);
  EXPECT_LE(peak.load(), baseline + 4);
}

}  // namespace
}  // namespace fastfit::mpi

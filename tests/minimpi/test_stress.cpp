// Stress and scale: the substrate is created and destroyed thousands of
// times per campaign; it must not leak synchronization state between
// worlds, and it must hold up at larger rank counts than the benchmarks
// default to.

#include <gtest/gtest.h>

#include "minimpi/mpi.hpp"

namespace fastfit::mpi {
namespace {

using namespace std::chrono_literals;

TEST(Stress, TwoHundredSequentialWorlds) {
  for (int round = 0; round < 200; ++round) {
    WorldOptions o;
    o.nranks = 4;
    o.watchdog = 2000ms;
    o.seed = static_cast<std::uint64_t>(round);
    World world(o);
    const auto result = world.run([round](Mpi& mpi) {
      const auto v = mpi.allreduce_value<std::int32_t>(round, kSum);
      ASSERT_EQ(v, round * 4);
    });
    ASSERT_TRUE(result.clean()) << "round " << round;
  }
}

TEST(Stress, SixtyFourRankCollectives) {
  WorldOptions o;
  o.nranks = 64;
  o.watchdog = 20000ms;
  World world(o);
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const int n = mpi.size();
    mpi.barrier();
    const auto sum = mpi.allreduce_value<std::int64_t>(mpi.rank(), kSum);
    ASSERT_EQ(sum, static_cast<std::int64_t>(n) * (n - 1) / 2);
    RegisteredBuffer<std::int32_t> mine(mpi.registry(), 1, mpi.rank());
    RegisteredBuffer<std::int32_t> all(mpi.registry(),
                                       static_cast<std::size_t>(n));
    mpi.allgather(mine.data(), 1, kInt32, all.data(), 1, kInt32);
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r)], r);
    }
  }).clean());
}

TEST(Stress, FailuresInConsecutiveWorldsStayContained) {
  // Alternate failing and clean worlds: a poisoned world must not bleed
  // into its successor.
  for (int round = 0; round < 50; ++round) {
    WorldOptions o;
    o.nranks = 4;
    o.watchdog = 500ms;
    World world(o);
    const bool fail_this_round = (round % 2 == 0);
    const auto result = world.run([fail_this_round](Mpi& mpi) {
      if (fail_this_round && mpi.world_rank() == 1) {
        throw AppError("scripted failure");
      }
      mpi.barrier();
    });
    ASSERT_EQ(result.clean(), !fail_this_round) << "round " << round;
  }
}

TEST(Stress, DeepCollectiveSequences) {
  // 500 collectives back to back: the tag sequence space must not
  // collide or wrap into confusion.
  WorldOptions o;
  o.nranks = 4;
  o.watchdog = 20000ms;
  World world(o);
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    for (std::int32_t i = 0; i < 500; ++i) {
      const auto v = mpi.allreduce_value(i, kMax);
      ASSERT_EQ(v, i);
    }
  }).clean());
}

}  // namespace
}  // namespace fastfit::mpi

// Communicator management property sweeps.

#include <gtest/gtest.h>

#include "minimpi/mpi.hpp"

namespace fastfit::mpi {
namespace {

using namespace std::chrono_literals;

WorldOptions opts(int n) {
  WorldOptions o;
  o.nranks = n;
  o.watchdog = 5000ms;
  return o;
}

class SplitSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int nranks() const { return std::get<0>(GetParam()); }
  int colors() const { return std::get<1>(GetParam()); }
};

TEST_P(SplitSweep, PartitionIsConsistent) {
  World world(opts(nranks()));
  const int ncolors = colors();
  EXPECT_TRUE(world.run([ncolors](Mpi& mpi) {
    const int me = mpi.rank();
    const int n = mpi.size();
    const Comm sub = mpi.comm_split(kCommWorld, me % ncolors, me);
    // Expected group size: ranks with my color.
    int expected = 0;
    for (int r = 0; r < n; ++r) {
      if (r % ncolors == me % ncolors) ++expected;
    }
    ASSERT_EQ(mpi.size(sub), expected);
    ASSERT_EQ(mpi.rank(sub), me / ncolors);
    // A collective on the subcommunicator touches exactly its members.
    const std::int32_t sum = mpi.allreduce_value<std::int32_t>(me, kSum, sub);
    std::int32_t expect_sum = 0;
    for (int r = me % ncolors; r < n; r += ncolors) expect_sum += r;
    ASSERT_EQ(sum, expect_sum);
  }).clean());
}

INSTANTIATE_TEST_SUITE_P(
    RanksByColors, SplitSweep,
    ::testing::Combine(::testing::Values(2, 4, 8, 12),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_c" +
             std::to_string(std::get<1>(info.param));
    });

TEST(CommSplit, KeyControlsOrdering) {
  World world(opts(4));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const int me = mpi.rank();
    // All one color, keys reversed: rank order flips.
    const Comm sub = mpi.comm_split(kCommWorld, 0, -me);
    EXPECT_EQ(mpi.rank(sub), mpi.size() - 1 - me);
  }).clean());
}

TEST(CommSplit, NestedSplits) {
  World world(opts(8));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const int me = mpi.rank();
    const Comm half = mpi.comm_split(kCommWorld, me / 4, me);
    const Comm quarter = mpi.comm_split(half, mpi.rank(half) / 2, me);
    EXPECT_EQ(mpi.size(half), 4);
    EXPECT_EQ(mpi.size(quarter), 2);
    const auto v = mpi.allreduce_value<std::int32_t>(1, kSum, quarter);
    EXPECT_EQ(v, 2);
  }).clean());
}

TEST(CommSplit, RepeatedSplitsProduceDistinctCommunicators) {
  World world(opts(4));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const Comm a = mpi.comm_split(kCommWorld, 0, mpi.rank());
    const Comm b = mpi.comm_split(kCommWorld, 0, mpi.rank());
    EXPECT_NE(a, b);  // distinct traffic spaces even with equal groups
    // Interleaved collectives on both stay separated.
    const auto va = mpi.allreduce_value<std::int32_t>(1, kSum, a);
    const auto vb = mpi.allreduce_value<std::int32_t>(2, kSum, b);
    EXPECT_EQ(va, 4);
    EXPECT_EQ(vb, 8);
  }).clean());
}

TEST(CommSplit, CollectiveOnParentStillWorksAfterSplit) {
  World world(opts(6));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const Comm sub = mpi.comm_split(kCommWorld, mpi.rank() % 2, mpi.rank());
    (void)sub;
    const auto v = mpi.allreduce_value<std::int32_t>(1, kSum);
    EXPECT_EQ(v, 6);
  }).clean());
}

TEST(CommSplit, SingletonCommunicators) {
  World world(opts(4));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    // Every rank its own color: communicators of size 1.
    const Comm solo = mpi.comm_split(kCommWorld, mpi.rank(), 0);
    EXPECT_EQ(mpi.size(solo), 1);
    EXPECT_EQ(mpi.rank(solo), 0);
    const auto v = mpi.allreduce_value<std::int32_t>(7, kSum, solo);
    EXPECT_EQ(v, 7);
    mpi.barrier(solo);
  }).clean());
}

}  // namespace
}  // namespace fastfit::mpi

// Fault-free correctness of every MiniMPI collective: the substrate must
// be a correct MPI before it can be a credible fault-injection target.

#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "minimpi/mpi.hpp"

namespace fastfit::mpi {
namespace {

using namespace std::chrono_literals;

WorldOptions opts(int n) {
  WorldOptions o;
  o.nranks = n;
  o.watchdog = 5000ms;
  return o;
}

TEST(Collectives, BarrierCompletesCleanly) {
  World world(opts(7));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    for (int i = 0; i < 3; ++i) mpi.barrier();
  }).clean());
}

TEST(Collectives, BcastFromRankZero) {
  World world(opts(6));
  const auto result = world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 16);
    if (mpi.rank() == 0) {
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = 3.5 * static_cast<double>(i);
      }
    }
    mpi.bcast(buf.data(), 16, kDouble, 0);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      ASSERT_DOUBLE_EQ(buf[i], 3.5 * static_cast<double>(i))
          << "rank " << mpi.rank();
    }
  });
  EXPECT_TRUE(result.clean());
}

TEST(Collectives, BcastFromEveryRoot) {
  World world(opts(5));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    for (std::int32_t root = 0; root < mpi.size(); ++root) {
      RegisteredBuffer<std::int32_t> buf(mpi.registry(), 4);
      if (mpi.rank() == root) {
        for (std::size_t i = 0; i < 4; ++i) buf[i] = root * 100 + static_cast<std::int32_t>(i);
      }
      mpi.bcast(buf.data(), 4, kInt32, root);
      for (std::size_t i = 0; i < 4; ++i) {
        ASSERT_EQ(buf[i], root * 100 + static_cast<std::int32_t>(i));
      }
    }
  }).clean());
}

TEST(Collectives, ReduceSumToEveryRoot) {
  World world(opts(6));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const int n = mpi.size();
    for (std::int32_t root = 0; root < n; ++root) {
      RegisteredBuffer<std::int64_t> send(mpi.registry(), 3);
      RegisteredBuffer<std::int64_t> recv(mpi.registry(), 3);
      for (std::size_t i = 0; i < 3; ++i) {
        send[i] = mpi.rank() + 1 + static_cast<std::int64_t>(100 * i);
      }
      mpi.reduce(send.data(), recv.data(), 3, kInt64, kSum, root);
      if (mpi.rank() == root) {
        const std::int64_t ranksum = static_cast<std::int64_t>(n) * (n + 1) / 2;
        for (std::size_t i = 0; i < 3; ++i) {
          ASSERT_EQ(recv[i], ranksum + static_cast<std::int64_t>(100 * i * n));
        }
      }
    }
  }).clean());
}

TEST(Collectives, ReduceMaxAndMin) {
  World world(opts(8));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    RegisteredBuffer<std::int32_t> send(mpi.registry(), 1);
    RegisteredBuffer<std::int32_t> hi(mpi.registry(), 1);
    RegisteredBuffer<std::int32_t> lo(mpi.registry(), 1);
    send[0] = (mpi.rank() * 37) % 11;
    mpi.reduce(send.data(), hi.data(), 1, kInt32, kMax, 0);
    mpi.reduce(send.data(), lo.data(), 1, kInt32, kMin, 0);
    if (mpi.rank() == 0) {
      // max/min of (r*37) % 11 over r in 0..7 = {0,4,8,1,5,9,2,6}.
      EXPECT_EQ(hi[0], 9);
      EXPECT_EQ(lo[0], 0);
    }
  }).clean());
}

TEST(Collectives, AllreduceSumDouble) {
  World world(opts(9));  // non-power-of-two exercises the folding path
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const int n = mpi.size();
    RegisteredBuffer<double> send(mpi.registry(), 5);
    RegisteredBuffer<double> recv(mpi.registry(), 5);
    for (std::size_t i = 0; i < 5; ++i) {
      send[i] = mpi.rank() + static_cast<double>(i);
    }
    mpi.allreduce(send.data(), recv.data(), 5, kDouble, kSum);
    const double ranksum = n * (n - 1) / 2.0;
    for (std::size_t i = 0; i < 5; ++i) {
      ASSERT_DOUBLE_EQ(recv[i], ranksum + static_cast<double>(i) * n);
    }
  }).clean());
}

TEST(Collectives, AllreduceLogicalAndDetectsDissent) {
  World world(opts(6));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const std::int32_t ok = mpi.rank() == 3 ? 0 : 1;
    const std::int32_t all_ok = mpi.allreduce_value(ok, kLand);
    EXPECT_EQ(all_ok, 0);
    const std::int32_t any = mpi.allreduce_value(ok, kLor);
    EXPECT_EQ(any, 1);
  }).clean());
}

TEST(Collectives, ScatterGatherRoundTrip) {
  World world(opts(4));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const int n = mpi.size();
    const std::int32_t root = 1;
    RegisteredBuffer<std::int32_t> all(mpi.registry(),
                                       static_cast<std::size_t>(4 * n));
    RegisteredBuffer<std::int32_t> mine(mpi.registry(), 4);
    if (mpi.rank() == root) {
      std::iota(all.begin(), all.end(), 1000);
    }
    mpi.scatter(all.data(), 4, kInt32, mine.data(), 4, kInt32, root);
    for (std::size_t i = 0; i < 4; ++i) {
      ASSERT_EQ(mine[i], 1000 + mpi.rank() * 4 + static_cast<std::int32_t>(i));
    }
    // Transform and gather back.
    for (std::size_t i = 0; i < 4; ++i) mine[i] += 5;
    RegisteredBuffer<std::int32_t> back(mpi.registry(),
                                        static_cast<std::size_t>(4 * n));
    mpi.gather(mine.data(), 4, kInt32, back.data(), 4, kInt32, root);
    if (mpi.rank() == root) {
      for (std::size_t i = 0; i < back.size(); ++i) {
        ASSERT_EQ(back[i], 1005 + static_cast<std::int32_t>(i));
      }
    }
  }).clean());
}

TEST(Collectives, AllgatherSharesEveryContribution) {
  World world(opts(5));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const int n = mpi.size();
    RegisteredBuffer<std::int32_t> send(mpi.registry(), 2);
    RegisteredBuffer<std::int32_t> recv(mpi.registry(),
                                        static_cast<std::size_t>(2 * n));
    send[0] = mpi.rank() * 10;
    send[1] = mpi.rank() * 10 + 1;
    mpi.allgather(send.data(), 2, kInt32, recv.data(), 2, kInt32);
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(recv[static_cast<std::size_t>(2 * r)], r * 10);
      ASSERT_EQ(recv[static_cast<std::size_t>(2 * r + 1)], r * 10 + 1);
    }
  }).clean());
}

TEST(Collectives, AlltoallTransposesBlocks) {
  World world(opts(4));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const int n = mpi.size();
    RegisteredBuffer<std::int32_t> send(mpi.registry(),
                                        static_cast<std::size_t>(n));
    RegisteredBuffer<std::int32_t> recv(mpi.registry(),
                                        static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      send[static_cast<std::size_t>(d)] = mpi.rank() * 100 + d;
    }
    mpi.alltoall(send.data(), 1, kInt32, recv.data(), 1, kInt32);
    for (int s = 0; s < n; ++s) {
      ASSERT_EQ(recv[static_cast<std::size_t>(s)], s * 100 + mpi.rank());
    }
  }).clean());
}

TEST(Collectives, AlltoallvWithRaggedBlocks) {
  World world(opts(3));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const int n = mpi.size();
    const int me = mpi.rank();
    // Rank r sends (d+1) elements to rank d, value 100*r + d.
    std::vector<std::int32_t> scounts, sdispls, rcounts, rdispls;
    std::int32_t soff = 0, roff = 0;
    for (int d = 0; d < n; ++d) {
      scounts.push_back(d + 1);
      sdispls.push_back(soff);
      soff += d + 1;
      rcounts.push_back(me + 1);
      rdispls.push_back(roff);
      roff += me + 1;
    }
    RegisteredBuffer<std::int32_t> send(mpi.registry(),
                                        static_cast<std::size_t>(soff));
    RegisteredBuffer<std::int32_t> recv(mpi.registry(),
                                        static_cast<std::size_t>(roff), -1);
    for (int d = 0; d < n; ++d) {
      for (int k = 0; k < scounts[static_cast<std::size_t>(d)]; ++k) {
        send[static_cast<std::size_t>(sdispls[static_cast<std::size_t>(d)] + k)] =
            100 * me + d;
      }
    }
    mpi.alltoallv(send.data(), scounts, sdispls, kInt32, recv.data(), rcounts,
                  rdispls, kInt32);
    for (int s = 0; s < n; ++s) {
      for (int k = 0; k < me + 1; ++k) {
        ASSERT_EQ(recv[static_cast<std::size_t>(
                      rdispls[static_cast<std::size_t>(s)] + k)],
                  100 * s + me);
      }
    }
  }).clean());
}

TEST(Collectives, ScattervGathervRoundTrip) {
  World world(opts(4));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const int n = mpi.size();
    const int me = mpi.rank();
    const std::int32_t root = 2;
    std::vector<std::int32_t> counts, displs;
    std::int32_t off = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(r + 1);
      displs.push_back(off);
      off += r + 1;
    }
    RegisteredBuffer<std::int32_t> all(mpi.registry(),
                                       static_cast<std::size_t>(off));
    RegisteredBuffer<std::int32_t> mine(mpi.registry(),
                                        static_cast<std::size_t>(me + 1));
    if (me == root) std::iota(all.begin(), all.end(), 0);
    mpi.scatterv(all.data(), counts, displs, kInt32, mine.data(), me + 1,
                 kInt32, root);
    for (int k = 0; k <= me; ++k) {
      ASSERT_EQ(mine[static_cast<std::size_t>(k)],
                displs[static_cast<std::size_t>(me)] + k);
    }
    RegisteredBuffer<std::int32_t> back(mpi.registry(),
                                        static_cast<std::size_t>(off), -7);
    mpi.gatherv(mine.data(), me + 1, kInt32, back.data(), counts, displs,
                kInt32, root);
    if (me == root) {
      for (std::int32_t i = 0; i < off; ++i) {
        ASSERT_EQ(back[static_cast<std::size_t>(i)], i);
      }
    }
  }).clean());
}

TEST(Collectives, AllgathervRaggedBlocks) {
  World world(opts(4));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const int n = mpi.size();
    const int me = mpi.rank();
    std::vector<std::int32_t> counts, displs;
    std::int32_t off = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(r + 1);
      displs.push_back(off);
      off += r + 1;
    }
    RegisteredBuffer<std::int32_t> send(mpi.registry(),
                                        static_cast<std::size_t>(me + 1));
    RegisteredBuffer<std::int32_t> recv(mpi.registry(),
                                        static_cast<std::size_t>(off));
    for (int k = 0; k <= me; ++k) send[static_cast<std::size_t>(k)] = me * 10 + k;
    mpi.allgatherv(send.data(), me + 1, kInt32, recv.data(), counts, displs,
                   kInt32);
    for (int r = 0; r < n; ++r) {
      for (int k = 0; k <= r; ++k) {
        ASSERT_EQ(recv[static_cast<std::size_t>(
                      displs[static_cast<std::size_t>(r)] + k)],
                  r * 10 + k);
      }
    }
  }).clean());
}

TEST(Collectives, ReduceScatterBlock) {
  World world(opts(4));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const int n = mpi.size();
    RegisteredBuffer<std::int32_t> send(mpi.registry(),
                                        static_cast<std::size_t>(2 * n));
    RegisteredBuffer<std::int32_t> recv(mpi.registry(), 2);
    for (int i = 0; i < 2 * n; ++i) {
      send[static_cast<std::size_t>(i)] = mpi.rank() + i;
    }
    mpi.reduce_scatter_block(send.data(), recv.data(), 2, kInt32, kSum);
    const std::int32_t ranksum = n * (n - 1) / 2;
    for (int k = 0; k < 2; ++k) {
      ASSERT_EQ(recv[static_cast<std::size_t>(k)],
                ranksum + n * (2 * mpi.rank() + k));
    }
  }).clean());
}

TEST(Collectives, ScanInclusivePrefix) {
  World world(opts(6));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    RegisteredBuffer<std::int32_t> send(mpi.registry(), 1);
    RegisteredBuffer<std::int32_t> recv(mpi.registry(), 1);
    send[0] = mpi.rank() + 1;
    mpi.scan(send.data(), recv.data(), 1, kInt32, kSum);
    const int r = mpi.rank();
    ASSERT_EQ(recv[0], (r + 1) * (r + 2) / 2);
  }).clean());
}

TEST(Collectives, SendRecvPointToPoint) {
  World world(opts(2));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 8);
    if (mpi.rank() == 0) {
      for (std::size_t i = 0; i < 8; ++i) buf[i] = 2.0 * static_cast<double>(i);
      mpi.send(buf.data(), 8, kDouble, 1, 77);
    } else {
      mpi.recv(buf.data(), 8, kDouble, 0, 77);
      for (std::size_t i = 0; i < 8; ++i) {
        ASSERT_DOUBLE_EQ(buf[i], 2.0 * static_cast<double>(i));
      }
    }
  }).clean());
}

TEST(Collectives, CommSplitEvenOdd) {
  World world(opts(8));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const int me = mpi.rank();
    const Comm half = mpi.comm_split(kCommWorld, me % 2, me);
    EXPECT_EQ(mpi.size(half), 4);
    EXPECT_EQ(mpi.rank(half), me / 2);
    // Collectives on the subcommunicator stay inside it.
    const std::int32_t sum = mpi.allreduce_value<std::int32_t>(me, kSum, half);
    const std::int32_t expect = (me % 2 == 0) ? 0 + 2 + 4 + 6 : 1 + 3 + 5 + 7;
    EXPECT_EQ(sum, expect);
  }).clean());
}

TEST(Collectives, CommDupIsDisjointTrafficSpace) {
  World world(opts(4));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const Comm dup = mpi.comm_dup(kCommWorld);
    EXPECT_NE(dup, kCommWorld);
    EXPECT_EQ(mpi.size(dup), 4);
    EXPECT_EQ(mpi.rank(dup), mpi.rank());
    // Interleave collectives on both communicators.
    const auto a = mpi.allreduce_value<std::int32_t>(1, kSum, dup);
    const auto b = mpi.allreduce_value<std::int32_t>(2, kSum, kCommWorld);
    EXPECT_EQ(a, 4);
    EXPECT_EQ(b, 8);
  }).clean());
}

TEST(Collectives, ZeroCountCollectivesAreNoOpsButSynchronize) {
  World world(opts(4));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 1, 42.0);
    mpi.bcast(buf.data(), 0, kDouble, 0);
    mpi.allreduce(buf.data(), buf.data(), 0, kDouble, kSum);
    EXPECT_DOUBLE_EQ(buf[0], 42.0);
  }).clean());
}

TEST(Collectives, ManyBackToBackCollectivesKeepSequenceDiscipline) {
  World world(opts(4));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    for (std::int32_t i = 0; i < 50; ++i) {
      const auto v = mpi.allreduce_value<std::int32_t>(i, kMax);
      ASSERT_EQ(v, i);
    }
  }).clean());
}

}  // namespace
}  // namespace fastfit::mpi

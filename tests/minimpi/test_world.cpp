#include "minimpi/world.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "minimpi/mpi.hpp"

namespace fastfit::mpi {
namespace {

using namespace std::chrono_literals;

WorldOptions small_world(int n) {
  WorldOptions opts;
  opts.nranks = n;
  opts.watchdog = 2000ms;
  return opts;
}

TEST(World, RunsEveryRankExactlyOnce) {
  World world(small_world(8));
  std::atomic<int> visits{0};
  std::atomic<std::uint32_t> rank_mask{0};
  const auto result = world.run([&](Mpi& mpi) {
    visits.fetch_add(1);
    rank_mask.fetch_or(1u << mpi.world_rank());
  });
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(visits.load(), 8);
  EXPECT_EQ(rank_mask.load(), 0xFFu);
}

TEST(World, RanksAndSizes) {
  World world(small_world(5));
  world.run([&](Mpi& mpi) {
    EXPECT_EQ(mpi.size(), 5);
    EXPECT_EQ(mpi.rank(), mpi.world_rank());
  });
}

TEST(World, RejectsInvalidRankCount) {
  WorldOptions opts;
  opts.nranks = 0;
  EXPECT_THROW(World w(opts), ConfigError);
}

TEST(World, SingleUse) {
  World world(small_world(2));
  world.run([](Mpi&) {});
  EXPECT_THROW(world.run([](Mpi&) {}), InternalError);
}

TEST(World, AppErrorCapturedAsAppDetected) {
  World world(small_world(4));
  const auto result = world.run([&](Mpi& mpi) {
    if (mpi.world_rank() == 2) throw AppError("checksum mismatch");
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::AppDetected);
  EXPECT_EQ(result.event->rank, 2);
  EXPECT_NE(result.event->message.find("checksum"), std::string::npos);
}

TEST(World, MpiErrorCapturedWithCode) {
  World world(small_world(2));
  const auto result = world.run([&](Mpi& mpi) {
    if (mpi.world_rank() == 0) {
      throw MpiError(MpiErrc::InvalidDatatype, "corrupted");
    }
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::MpiErr);
  ASSERT_TRUE(result.event->mpi_code.has_value());
  EXPECT_EQ(*result.event->mpi_code, MpiErrc::InvalidDatatype);
}

TEST(World, SegFaultCaptured) {
  World world(small_world(2));
  const auto result = world.run([&](Mpi& mpi) {
    int unregistered = 0;
    if (mpi.world_rank() == 1) {
      mpi.registry().check(&unregistered, sizeof(int));
    }
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::SegFault);
}

TEST(World, PoisonUnblocksPeersWaitingOnCollective) {
  // Rank 0 dies before the barrier; everyone else is released promptly
  // with the initiating event (not a timeout) reported.
  WorldOptions opts = small_world(4);
  opts.watchdog = 10000ms;  // a hang here would stall the test visibly
  World world(opts);
  const auto start = std::chrono::steady_clock::now();
  const auto result = world.run([&](Mpi& mpi) {
    if (mpi.world_rank() == 0) throw AppError("early death");
    mpi.barrier();
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::AppDetected);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5000ms);
}

TEST(World, TimeoutCapturedAsInfLoop) {
  WorldOptions opts = small_world(2);
  opts.watchdog = 50ms;
  World world(opts);
  const auto result = world.run([&](Mpi& mpi) {
    if (mpi.world_rank() == 0) mpi.barrier();  // rank 1 never joins
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::Timeout);
}

TEST(World, FirstEventWins) {
  World world(small_world(4));
  const auto result = world.run([&](Mpi& mpi) {
    if (mpi.world_rank() == 3) throw AppError("first");
    // Other ranks fail later (after a barrier attempt that aborts).
    mpi.barrier();
    throw MpiError(MpiErrc::Internal, "should never initiate");
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::AppDetected);
  EXPECT_EQ(result.event->rank, 3);
}

TEST(World, InternalErrorPropagatesToCaller) {
  World world(small_world(2));
  EXPECT_THROW(world.run([&](Mpi& mpi) {
    if (mpi.world_rank() == 0) throw InternalError("library bug");
  }),
               InternalError);
}

TEST(World, CheckDeadlineThrowsPastWatchdog) {
  WorldOptions opts = small_world(1);
  opts.watchdog = 1ms;
  World world(opts);
  const auto result = world.run([&](Mpi& mpi) {
    std::this_thread::sleep_for(20ms);
    mpi.check_deadline();
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::Timeout);
}

TEST(World, CommWorldGroupIsEveryone) {
  World world(small_world(6));
  const auto& group = world.group_of(kCommWorld);
  ASSERT_EQ(group.size(), 6u);
  for (int r = 0; r < 6; ++r) EXPECT_EQ(group[static_cast<std::size_t>(r)], r);
  EXPECT_EQ(world.comm_rank_of(kCommWorld, 4), 4);
}

TEST(World, InvalidCommHandleRejected) {
  World world(small_world(2));
  EXPECT_THROW(world.group_of(static_cast<Comm>(0x1234u)), MpiError);
  EXPECT_THROW(world.group_of(make_comm(57)), MpiError);
}

TEST(World, RegisterCommIdempotentOnKey) {
  World world(small_world(4));
  const Comm a = world.register_comm("sub", {0, 2});
  const Comm b = world.register_comm("sub", {0, 2});
  EXPECT_EQ(a, b);
  EXPECT_EQ(world.comm_rank_of(a, 2), 1);
  EXPECT_EQ(world.comm_rank_of(a, 1), -1);
}

TEST(World, RegisterCommInconsistentGroupIsCommError) {
  World world(small_world(4));
  world.register_comm("sub", {0, 2});
  EXPECT_THROW(world.register_comm("sub", {0, 3}), MpiError);
}

}  // namespace
}  // namespace fastfit::mpi

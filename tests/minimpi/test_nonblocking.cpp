// Nonblocking point-to-point semantics.

#include <gtest/gtest.h>

#include "minimpi/mpi.hpp"

namespace fastfit::mpi {
namespace {

using namespace std::chrono_literals;

WorldOptions opts(int n) {
  WorldOptions o;
  o.nranks = n;
  o.watchdog = 3000ms;
  return o;
}

TEST(Nonblocking, PostComputeWaitOverlap) {
  World world(opts(2));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 4);
    if (mpi.rank() == 0) {
      for (std::size_t i = 0; i < 4; ++i) buf[i] = 1.0 + static_cast<double>(i);
      auto req = mpi.isend(buf.data(), 4, kDouble, 1, 9);
      EXPECT_FALSE(req.pending());
      mpi.wait(req);  // idempotent on a complete request
    } else {
      auto req = mpi.irecv(buf.data(), 4, kDouble, 0, 9);
      EXPECT_TRUE(req.pending());
      // "compute" before completing the receive
      double acc = 0.0;
      for (int i = 0; i < 1000; ++i) acc += i * 0.5;
      EXPECT_GT(acc, 0.0);
      mpi.wait(req);
      EXPECT_FALSE(req.pending());
      for (std::size_t i = 0; i < 4; ++i) {
        ASSERT_DOUBLE_EQ(buf[i], 1.0 + static_cast<double>(i));
      }
    }
  }).clean());
}

TEST(Nonblocking, MultipleOutstandingReceivesWaitall) {
  World world(opts(4));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    if (mpi.rank() == 0) {
      std::vector<Mpi::Request> requests;
      RegisteredBuffer<std::int32_t> values(mpi.registry(), 3, -1);
      for (int src = 1; src < 4; ++src) {
        requests.push_back(mpi.irecv(values.data() + (src - 1), 1, kInt32,
                                     src, 5));
      }
      mpi.waitall(requests);
      for (int src = 1; src < 4; ++src) {
        ASSERT_EQ(values[static_cast<std::size_t>(src - 1)], src * 11);
      }
    } else {
      RegisteredBuffer<std::int32_t> v(mpi.registry(), 1, mpi.rank() * 11);
      mpi.send(v.data(), 1, kInt32, 0, 5);
    }
  }).clean());
}

TEST(Nonblocking, IrecvValidatesAtPostTime) {
  World world(opts(2));
  const auto result = world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 1);
    if (mpi.rank() == 0) {
      (void)mpi.irecv(buf.data(), -1, kDouble, 1, 0);
    }
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(*result.event->mpi_code, MpiErrc::InvalidCount);
}

TEST(Nonblocking, WaitOnStarvedReceiveTimesOut) {
  WorldOptions o = opts(2);
  o.watchdog = 100ms;
  World world(o);
  const auto result = world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 1);
    if (mpi.rank() == 0) {
      auto req = mpi.irecv(buf.data(), 1, kDouble, 1, 7);
      mpi.wait(req);  // rank 1 never sends
    }
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::Timeout);
}

TEST(Nonblocking, TruncationDetectedAtWait) {
  World world(opts(2));
  const auto result = world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 4);
    if (mpi.rank() == 0) {
      mpi.send(buf.data(), 4, kDouble, 1, 3);
    } else {
      auto req = mpi.irecv(buf.data(), 1, kDouble, 0, 3);  // posted smaller
      mpi.wait(req);
    }
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(*result.event->mpi_code, MpiErrc::Truncate);
}

TEST(Nonblocking, InterposedLikeBlockingP2p) {
  // The p2p hook must see irecv posts with their parameters.
  class Recorder : public ToolHooks {
   public:
    void on_enter(CollectiveCall&, Mpi&) override {}
    void on_exit(const CollectiveCall&, Mpi&) override {}
    void on_p2p(P2pCall& call, Mpi&) override {
      if (call.kind == P2pKind::Recv) recv_posts.fetch_add(1);
      if (call.kind == P2pKind::Send) send_posts.fetch_add(1);
    }
    std::atomic<int> recv_posts{0};
    std::atomic<int> send_posts{0};
  } recorder;
  World world(opts(2));
  world.set_tools(&recorder);
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    RegisteredBuffer<std::int32_t> v(mpi.registry(), 1, 5);
    if (mpi.rank() == 0) {
      auto req = mpi.isend(v.data(), 1, kInt32, 1, 1);
      mpi.wait(req);
    } else {
      auto req = mpi.irecv(v.data(), 1, kInt32, 0, 1);
      mpi.wait(req);
    }
  }).clean());
  EXPECT_EQ(recorder.recv_posts.load(), 1);
  EXPECT_EQ(recorder.send_posts.load(), 1);
}

}  // namespace
}  // namespace fastfit::mpi

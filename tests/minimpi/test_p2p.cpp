// Point-to-point semantics: validation, matching, truncation, and the
// interleavings the collectives are built on.

#include <gtest/gtest.h>

#include "minimpi/mpi.hpp"

namespace fastfit::mpi {
namespace {

using namespace std::chrono_literals;

WorldOptions opts(int n, std::chrono::milliseconds watchdog = 3000ms) {
  WorldOptions o;
  o.nranks = n;
  o.watchdog = watchdog;
  return o;
}

TEST(P2p, NegativeCountRejected) {
  World world(opts(2));
  const auto result = world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 4);
    if (mpi.rank() == 0) mpi.send(buf.data(), -1, kDouble, 1, 0);
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(*result.event->mpi_code, MpiErrc::InvalidCount);
}

TEST(P2p, NegativeTagRejected) {
  World world(opts(2));
  const auto result = world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 4);
    if (mpi.rank() == 0) mpi.send(buf.data(), 4, kDouble, 1, -3);
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(*result.event->mpi_code, MpiErrc::InvalidTag);
}

TEST(P2p, InvalidDatatypeRejected) {
  World world(opts(2));
  const auto result = world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 4);
    if (mpi.rank() == 0) {
      mpi.send(buf.data(), 4, static_cast<Datatype>(0xBEEF), 1, 0);
    }
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(*result.event->mpi_code, MpiErrc::InvalidDatatype);
}

TEST(P2p, DestinationOutOfRangeRejected) {
  World world(opts(2));
  const auto result = world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 4);
    if (mpi.rank() == 0) mpi.send(buf.data(), 4, kDouble, 7, 0);
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(*result.event->mpi_code, MpiErrc::InvalidRank);
}

TEST(P2p, OversizedMessageIsTruncateError) {
  World world(opts(2));
  const auto result = world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 8);
    if (mpi.rank() == 0) {
      mpi.send(buf.data(), 8, kDouble, 1, 5);
    } else {
      mpi.recv(buf.data(), 4, kDouble, 0, 5);  // posted smaller
    }
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(*result.event->mpi_code, MpiErrc::Truncate);
}

TEST(P2p, ShorterMessageCompletesPartially) {
  World world(opts(2));
  const auto result = world.run([](Mpi& mpi) {
    RegisteredBuffer<std::int32_t> buf(mpi.registry(), 4, -1);
    if (mpi.rank() == 0) {
      buf[0] = 42;
      mpi.send(buf.data(), 1, kInt32, 1, 5);
    } else {
      mpi.recv(buf.data(), 4, kInt32, 0, 5);
      EXPECT_EQ(buf[0], 42);
      EXPECT_EQ(buf[1], -1);  // untouched
    }
  });
  EXPECT_TRUE(result.clean());
}

TEST(P2p, UnregisteredSendBufferSegfaults) {
  World world(opts(2));
  const auto result = world.run([](Mpi& mpi) {
    double stack_buf[4] = {};
    if (mpi.rank() == 0) mpi.send(stack_buf, 4, kDouble, 1, 0);
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::SegFault);
}

TEST(P2p, TagsSeparateStreams) {
  World world(opts(2));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    RegisteredBuffer<std::int32_t> a(mpi.registry(), 1);
    RegisteredBuffer<std::int32_t> b(mpi.registry(), 1);
    if (mpi.rank() == 0) {
      a[0] = 1;
      b[0] = 2;
      mpi.send(a.data(), 1, kInt32, 1, 10);
      mpi.send(b.data(), 1, kInt32, 1, 20);
    } else {
      // Receive in reverse tag order: matching must be by tag, not FIFO.
      mpi.recv(b.data(), 1, kInt32, 0, 20);
      mpi.recv(a.data(), 1, kInt32, 0, 10);
      EXPECT_EQ(a[0], 1);
      EXPECT_EQ(b[0], 2);
    }
  }).clean());
}

TEST(P2p, ManyMessagesStayOrderedPerTag) {
  World world(opts(2));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    RegisteredBuffer<std::int32_t> v(mpi.registry(), 1);
    if (mpi.rank() == 0) {
      for (std::int32_t i = 0; i < 64; ++i) {
        v[0] = i;
        mpi.send(v.data(), 1, kInt32, 1, 7);
      }
    } else {
      for (std::int32_t i = 0; i < 64; ++i) {
        mpi.recv(v.data(), 1, kInt32, 0, 7);
        ASSERT_EQ(v[0], i);
      }
    }
  }).clean());
}

TEST(P2p, RingPassAroundAllRanks) {
  World world(opts(8));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const int n = mpi.size();
    const int me = mpi.rank();
    RegisteredBuffer<std::int64_t> token(mpi.registry(), 1, 0);
    if (me == 0) {
      token[0] = 1;
      mpi.send(token.data(), 1, kInt64, 1, 3);
      mpi.recv(token.data(), 1, kInt64, n - 1, 3);
      EXPECT_EQ(token[0], static_cast<std::int64_t>(n));
    } else {
      mpi.recv(token.data(), 1, kInt64, me - 1, 3);
      token[0] += 1;
      mpi.send(token.data(), 1, kInt64, (me + 1) % n, 3);
    }
  }).clean());
}

TEST(P2p, MissingSenderTimesOut) {
  World world(opts(2, 100ms));
  const auto result = world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 1);
    if (mpi.rank() == 1) mpi.recv(buf.data(), 1, kDouble, 0, 9);
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::Timeout);
}

}  // namespace
}  // namespace fastfit::mpi

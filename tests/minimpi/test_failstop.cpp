// Fail-stop rank death and ULFM-style shrink-and-continue repair.
//
// Covers the fault-model-v2 failure semantics at the MiniMPI layer:
// a killed rank raises RankKilled at its next cancellation point, peers
// observe the death (world poison with repair off, RankRevoked with
// repair on), and survivors can rebuild a shrunken communicator and
// finish a repair protocol that classifies the run as repaired.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "minimpi/mpi.hpp"
#include "minimpi/world.hpp"
#include "support/error.hpp"

namespace fastfit::mpi {
namespace {

using namespace std::chrono_literals;

WorldOptions small_world(int n, bool repair = false) {
  WorldOptions o;
  o.nranks = n;
  o.watchdog = 2000ms;
  o.repair = repair;
  return o;
}

TEST(FailStop, DeathPoisonsWorldWithoutRepair) {
  World world(small_world(4));
  const auto result = world.run([](Mpi& mpi) {
    if (mpi.world_rank() == 2) {
      throw RankKilled(2, "fail-stop test fault");
    }
    mpi.barrier();
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::RankDead);
  EXPECT_EQ(result.event->rank, 2);
  EXPECT_TRUE(result.rank_died);
  EXPECT_FALSE(result.repaired);
  ASSERT_TRUE(result.autopsy.has_value());
  EXPECT_EQ(result.autopsy->ranks[2].phase, RankPhase::Dead);
}

TEST(FailStop, KillRankUnblocksBlockedReceive) {
  // The victim parks in a transport wait for a message that never comes;
  // kill_rank must wake it and raise RankKilled on its own thread instead
  // of burning the watchdog. Hang detection is off so the monitor cannot
  // win the race by proving the blocked-on-exited-peer deadlock first.
  auto options = small_world(2);
  options.hang_detection = false;
  World world(options);
  std::thread killer([&world] {
    std::this_thread::sleep_for(100ms);
    world.kill_rank(1);
  });
  const auto result = world.run([](Mpi& mpi) {
    if (mpi.world_rank() == 1) {
      RegisteredBuffer<double> buf(mpi.registry(), 1);
      mpi.recv(buf.data(), 1, kDouble, 0, 7);
    }
  });
  killer.join();
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::RankDead);
  EXPECT_EQ(result.event->rank, 1);
  EXPECT_TRUE(result.rank_died);
}

TEST(FailStop, FirstDeathWinsEventCapture) {
  World world(small_world(4));
  const auto result = world.run([](Mpi& mpi) {
    // Every rank dies; exactly one death initiates the captured event and
    // the others are subordinate.
    throw RankKilled(mpi.world_rank(), "mass fail-stop");
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::RankDead);
  EXPECT_GE(result.event->rank, 0);
  EXPECT_LT(result.event->rank, 4);
  EXPECT_TRUE(result.rank_died);
}

TEST(FailStop, RepairModeRevokesSurvivorsAndShrinks) {
  World world(small_world(4, /*repair=*/true));
  std::atomic<int> repaired{0};
  const auto result = world.run([&repaired](Mpi& mpi) {
    try {
      if (mpi.world_rank() == 1) {
        throw RankKilled(1, "fail-stop under repair");
      }
      // Survivors keep collectively communicating until the revocation
      // notice reaches them.
      for (int i = 0; i < 1000; ++i) {
        mpi.allreduce_value(1.0, kSum);
      }
      FAIL() << "revocation never observed on rank " << mpi.world_rank();
    } catch (const RankRevoked&) {
      const Comm survivors = mpi.shrink_and_continue();
      EXPECT_EQ(mpi.size(survivors), 3);
      EXPECT_GE(mpi.rank(survivors), 0);
      // The shrunken communicator postdates the revocation: collectives
      // on it complete instead of re-raising RankRevoked.
      const double members =
          mpi.allreduce_value(1.0, kSum, survivors);
      EXPECT_DOUBLE_EQ(members, 3.0);
      mpi.mark_repaired();
      repaired.fetch_add(1);
    }
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::RankDead);
  EXPECT_EQ(result.event->rank, 1);
  EXPECT_TRUE(result.rank_died);
  EXPECT_TRUE(result.repaired);
  EXPECT_EQ(repaired.load(), 3);
}

TEST(FailStop, ShrinkIsIdempotentAcrossSurvivors) {
  World world(small_world(4, /*repair=*/true));
  std::mutex mutex;
  std::vector<Comm> handles;
  const auto result = world.run([&](Mpi& mpi) {
    try {
      if (mpi.world_rank() == 3) {
        throw RankKilled(3, "fail-stop");
      }
      for (int i = 0; i < 1000; ++i) {
        mpi.barrier();
      }
    } catch (const RankRevoked&) {
      const Comm survivors = mpi.shrink_and_continue();
      // Calling again returns the same handle: registration is keyed.
      EXPECT_EQ(mpi.shrink_and_continue(), survivors);
      {
        std::lock_guard lock(mutex);
        handles.push_back(survivors);
      }
      mpi.barrier(survivors);
      mpi.mark_repaired();
    }
  });
  EXPECT_TRUE(result.repaired);
  ASSERT_EQ(handles.size(), 3u);
  EXPECT_EQ(handles[0], handles[1]);
  EXPECT_EQ(handles[1], handles[2]);
}

TEST(FailStop, PartialRepairIsNotRepaired) {
  // One survivor declines to call mark_repaired: the run must stay
  // RANK_DEAD (repaired requires *every* survivor).
  World world(small_world(4, /*repair=*/true));
  const auto result = world.run([](Mpi& mpi) {
    try {
      if (mpi.world_rank() == 0) {
        throw RankKilled(0, "fail-stop");
      }
      for (int i = 0; i < 1000; ++i) {
        mpi.allreduce_value(1.0, kSum);
      }
    } catch (const RankRevoked&) {
      const Comm survivors = mpi.shrink_and_continue();
      mpi.barrier(survivors);
      if (mpi.world_rank() != 3) {
        mpi.mark_repaired();
      }
    }
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::RankDead);
  EXPECT_TRUE(result.rank_died);
  EXPECT_FALSE(result.repaired);
}

TEST(FailStop, NonRepairingClosureUnderRepairModeStaysRankDead) {
  // Repair mode on but the application has no repair hook: survivors let
  // RankRevoked unwind (the thread shim swallows it like WorldAborted)
  // and the run classifies RANK_DEAD, not an internal error.
  World world(small_world(4, /*repair=*/true));
  const auto result = world.run([](Mpi& mpi) {
    if (mpi.world_rank() == 2) {
      throw RankKilled(2, "fail-stop, nobody repairs");
    }
    for (int i = 0; i < 1000; ++i) {
      mpi.allreduce_value(1.0, kSum);
    }
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::RankDead);
  EXPECT_EQ(result.event->rank, 2);
  EXPECT_TRUE(result.rank_died);
  EXPECT_FALSE(result.repaired);
}

TEST(FailStop, DeadRankVisibleInProgressTable) {
  ProgressTable table(3);
  table.publish_dead(1);
  EXPECT_EQ(table.snapshot(1).phase, RankPhase::Dead);
  // A killed rank's thread still unwinds through the normal exit path;
  // the death verdict must survive the exit publish.
  table.publish_exited(1);
  EXPECT_EQ(table.snapshot(1).phase, RankPhase::Dead);
  table.publish_exited(0);
  EXPECT_EQ(table.snapshot(0).phase, RankPhase::Exited);
}

TEST(FailStop, AliveMembersExcludeTheDead) {
  World world(small_world(4, /*repair=*/true));
  const auto result = world.run([&world](Mpi& mpi) {
    try {
      if (mpi.world_rank() == 1) {
        throw RankKilled(1, "fail-stop");
      }
      for (int i = 0; i < 1000; ++i) {
        mpi.barrier();
      }
    } catch (const RankRevoked&) {
      const auto alive = world.state()->alive_members();
      EXPECT_EQ(alive, (std::vector<int>{0, 2, 3}));
      const Comm survivors = mpi.shrink_and_continue();
      EXPECT_EQ(world.group_of(survivors), alive);
      mpi.barrier(survivors);
      mpi.mark_repaired();
    }
  });
  EXPECT_TRUE(result.repaired);
}

}  // namespace
}  // namespace fastfit::mpi

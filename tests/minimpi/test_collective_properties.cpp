// Property sweeps: collective correctness must hold across rank counts,
// message sizes, datatypes, and roots — including the awkward shapes
// (n = 1, non-powers-of-two, zero-length payloads).

#include <gtest/gtest.h>

#include <numeric>

#include "minimpi/mpi.hpp"
#include "support/rng.hpp"

namespace fastfit::mpi {
namespace {

using namespace std::chrono_literals;

WorldOptions opts(int n) {
  WorldOptions o;
  o.nranks = n;
  o.watchdog = 8000ms;
  return o;
}

class CollectiveSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int nranks() const { return std::get<0>(GetParam()); }
  int count() const { return std::get<1>(GetParam()); }
};

TEST_P(CollectiveSweep, AllreduceSumMatchesClosedForm) {
  World world(opts(nranks()));
  const int c = count();
  EXPECT_TRUE(world.run([c](Mpi& mpi) {
    const int n = mpi.size();
    RegisteredBuffer<std::int64_t> send(mpi.registry(),
                                        static_cast<std::size_t>(c));
    RegisteredBuffer<std::int64_t> recv(mpi.registry(),
                                        static_cast<std::size_t>(c));
    for (int i = 0; i < c; ++i) {
      send[static_cast<std::size_t>(i)] = mpi.rank() * 1000 + i;
    }
    mpi.allreduce(send.data(), recv.data(), c, kInt64, kSum);
    const std::int64_t ranksum = static_cast<std::int64_t>(n) * (n - 1) / 2;
    for (int i = 0; i < c; ++i) {
      ASSERT_EQ(recv[static_cast<std::size_t>(i)],
                ranksum * 1000 + static_cast<std::int64_t>(i) * n);
    }
  }).clean());
}

TEST_P(CollectiveSweep, BcastDeliversIdenticalBytesEverywhere) {
  World world(opts(nranks()));
  const int c = count();
  EXPECT_TRUE(world.run([c](Mpi& mpi) {
    const std::int32_t root = mpi.size() / 2;
    RegisteredBuffer<std::uint64_t> buf(mpi.registry(),
                                        static_cast<std::size_t>(c));
    if (mpi.rank() == root) {
      RngStream rng(2024, "payload");
      for (int i = 0; i < c; ++i) {
        buf[static_cast<std::size_t>(i)] = rng.uniform_u64(0, ~0ULL);
      }
    }
    mpi.bcast(buf.data(), c, kUint64, root);
    RngStream rng(2024, "payload");
    for (int i = 0; i < c; ++i) {
      ASSERT_EQ(buf[static_cast<std::size_t>(i)], rng.uniform_u64(0, ~0ULL));
    }
  }).clean());
}

TEST_P(CollectiveSweep, AllgatherEqualsGatherPlusBcast) {
  World world(opts(nranks()));
  const int c = count();
  EXPECT_TRUE(world.run([c](Mpi& mpi) {
    const int n = mpi.size();
    RegisteredBuffer<std::int32_t> send(mpi.registry(),
                                        static_cast<std::size_t>(c));
    RegisteredBuffer<std::int32_t> via_allgather(
        mpi.registry(), static_cast<std::size_t>(c * n));
    RegisteredBuffer<std::int32_t> via_two_step(
        mpi.registry(), static_cast<std::size_t>(c * n));
    for (int i = 0; i < c; ++i) {
      send[static_cast<std::size_t>(i)] = mpi.rank() * 7 + i;
    }
    mpi.allgather(send.data(), c, kInt32, via_allgather.data(), c, kInt32);
    mpi.gather(send.data(), c, kInt32, via_two_step.data(), c, kInt32, 0);
    mpi.bcast(via_two_step.data(), c * n, kInt32, 0);
    for (std::size_t i = 0; i < via_allgather.size(); ++i) {
      ASSERT_EQ(via_allgather[i], via_two_step[i]);
    }
  }).clean());
}

INSTANTIATE_TEST_SUITE_P(
    RanksByCount, CollectiveSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7, 8, 16),
                       ::testing::Values(0, 1, 17, 256)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_c" +
             std::to_string(std::get<1>(info.param));
    });

class DatatypeSweep : public ::testing::TestWithParam<Datatype> {};

TEST_P(DatatypeSweep, AllreduceMaxIdempotentOnEqualInputs) {
  // max(x, x, ..., x) == x for every datatype: exercises the typed
  // reduction dispatch over the whole datatype table.
  World world(opts(4));
  const Datatype dtype = GetParam();
  EXPECT_TRUE(world.run([dtype](Mpi& mpi) {
    const std::size_t esize = datatype_size(dtype);
    RegisteredBuffer<std::byte> send(mpi.registry(), 8 * esize);
    RegisteredBuffer<std::byte> recv(mpi.registry(), 8 * esize);
    for (std::size_t i = 0; i < send.size(); ++i) {
      send[i] = static_cast<std::byte>((i * 13 + 1) % 120);  // valid for all types
    }
    mpi.allreduce(send.data(), recv.data(), 8, dtype, kMax);
    for (std::size_t i = 0; i < send.size(); ++i) {
      ASSERT_EQ(recv[i], send[i]);
    }
  }).clean());
}

INSTANTIATE_TEST_SUITE_P(AllDatatypes, DatatypeSweep,
                         ::testing::Values(kChar, kByte, kInt32, kUint32,
                                           kInt64, kUint64, kFloat, kDouble),
                         [](const auto& info) {
                           return std::string(
                               datatype_name(info.param).substr(4));
                         });

class RootSweep : public ::testing::TestWithParam<int> {};

TEST_P(RootSweep, ReduceAndBcastAgreeWithAllreduce) {
  World world(opts(8));
  const std::int32_t root = GetParam();
  EXPECT_TRUE(world.run([root](Mpi& mpi) {
    RegisteredBuffer<double> send(mpi.registry(), 4);
    RegisteredBuffer<double> combined(mpi.registry(), 4);
    RegisteredBuffer<double> reference(mpi.registry(), 4);
    for (std::size_t i = 0; i < 4; ++i) {
      send[i] = (mpi.rank() + 1) * 0.25 + static_cast<double>(i);
    }
    mpi.reduce(send.data(), combined.data(), 4, kDouble, kSum, root);
    mpi.bcast(combined.data(), 4, kDouble, root);
    mpi.allreduce(send.data(), reference.data(), 4, kDouble, kSum);
    for (std::size_t i = 0; i < 4; ++i) {
      ASSERT_NEAR(combined[i], reference[i], 1e-9);
    }
  }).clean());
}

INSTANTIATE_TEST_SUITE_P(EveryRoot, RootSweep, ::testing::Range(0, 8));

TEST(CollectiveProperties, ScanOfLastRankEqualsAllreduce) {
  World world(opts(7));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    RegisteredBuffer<std::int64_t> send(mpi.registry(), 2);
    RegisteredBuffer<std::int64_t> prefix(mpi.registry(), 2);
    send[0] = mpi.rank() * 3 + 1;
    send[1] = mpi.rank();
    mpi.scan(send.data(), prefix.data(), 2, kInt64, kSum);
    RegisteredBuffer<std::int64_t> total(mpi.registry(), 2);
    mpi.allreduce(send.data(), total.data(), 2, kInt64, kSum);
    if (mpi.rank() == mpi.size() - 1) {
      EXPECT_EQ(prefix[0], total[0]);
      EXPECT_EQ(prefix[1], total[1]);
    }
  }).clean());
}

TEST(CollectiveProperties, ReduceScatterBlockEqualsAllreduceSlice) {
  World world(opts(6));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    const int n = mpi.size();
    const int block = 3;
    RegisteredBuffer<std::int32_t> send(mpi.registry(),
                                        static_cast<std::size_t>(block * n));
    for (int i = 0; i < block * n; ++i) {
      send[static_cast<std::size_t>(i)] = mpi.rank() * i + 1;
    }
    RegisteredBuffer<std::int32_t> mine(mpi.registry(),
                                        static_cast<std::size_t>(block));
    mpi.reduce_scatter_block(send.data(), mine.data(), block, kInt32, kSum);
    RegisteredBuffer<std::int32_t> full(mpi.registry(),
                                        static_cast<std::size_t>(block * n));
    mpi.allreduce(send.data(), full.data(), block * n, kInt32, kSum);
    for (int k = 0; k < block; ++k) {
      ASSERT_EQ(mine[static_cast<std::size_t>(k)],
                full[static_cast<std::size_t>(mpi.rank() * block + k)]);
    }
  }).clean());
}

}  // namespace
}  // namespace fastfit::mpi

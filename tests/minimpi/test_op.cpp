#include "minimpi/op.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "minimpi/datatype.hpp"
#include "support/error.hpp"

namespace fastfit::mpi {
namespace {

template <typename T>
std::vector<T> apply_vec(Op op, Datatype dtype, std::vector<T> accum,
                         const std::vector<T>& incoming) {
  std::vector<std::byte> a(accum.size() * sizeof(T));
  std::vector<std::byte> b(incoming.size() * sizeof(T));
  std::memcpy(a.data(), accum.data(), a.size());
  std::memcpy(b.data(), incoming.data(), b.size());
  apply(op, dtype, b, a, accum.size());
  std::memcpy(accum.data(), a.data(), a.size());
  return accum;
}

TEST(Op, SumDouble) {
  const auto r = apply_vec<double>(kSum, kDouble, {1.5, 2.0}, {0.5, 3.0});
  EXPECT_DOUBLE_EQ(r[0], 2.0);
  EXPECT_DOUBLE_EQ(r[1], 5.0);
}

TEST(Op, ProdInt) {
  const auto r = apply_vec<std::int32_t>(kProd, kInt32, {3, -2}, {4, 5});
  EXPECT_EQ(r[0], 12);
  EXPECT_EQ(r[1], -10);
}

TEST(Op, MinMax) {
  EXPECT_EQ(apply_vec<std::int32_t>(kMin, kInt32, {3}, {7})[0], 3);
  EXPECT_EQ(apply_vec<std::int32_t>(kMax, kInt32, {3}, {7})[0], 7);
  EXPECT_DOUBLE_EQ(apply_vec<double>(kMin, kDouble, {-1.0}, {2.0})[0], -1.0);
}

TEST(Op, BitwiseOnIntegers) {
  EXPECT_EQ(apply_vec<std::uint32_t>(kBand, kUint32, {0xF0F0}, {0xFF00})[0],
            0xF000u);
  EXPECT_EQ(apply_vec<std::uint32_t>(kBor, kUint32, {0xF0F0}, {0xFF00})[0],
            0xFFF0u);
  EXPECT_EQ(apply_vec<std::uint32_t>(kBxor, kUint32, {0xF0F0}, {0xFF00})[0],
            0x0FF0u);
}

TEST(Op, LogicalOnIntegers) {
  EXPECT_EQ(apply_vec<std::int32_t>(kLand, kInt32, {2}, {3})[0], 1);
  EXPECT_EQ(apply_vec<std::int32_t>(kLand, kInt32, {2}, {0})[0], 0);
  EXPECT_EQ(apply_vec<std::int32_t>(kLor, kInt32, {0}, {0})[0], 0);
  EXPECT_EQ(apply_vec<std::int32_t>(kLor, kInt32, {0}, {5})[0], 1);
}

TEST(Op, BitwiseRejectsFloatingPoint) {
  EXPECT_FALSE(op_supports(kBand, kDouble));
  EXPECT_FALSE(op_supports(kLor, kFloat));
  EXPECT_TRUE(op_supports(kBand, kInt64));
  EXPECT_TRUE(op_supports(kSum, kDouble));
  std::vector<std::byte> buf(8);
  EXPECT_THROW(apply(kBxor, kDouble, buf, buf, 1), MpiError);
}

TEST(Op, InvalidHandlesRejected) {
  const auto bogus_op = static_cast<Op>(0xDEADBEEFu);
  EXPECT_FALSE(is_valid(bogus_op));
  EXPECT_THROW(op_name(bogus_op), MpiError);
  EXPECT_THROW(op_supports(bogus_op, kInt32), MpiError);
  std::vector<std::byte> buf(4);
  EXPECT_THROW(apply(bogus_op, kInt32, buf, buf, 1), MpiError);
  const auto bogus_dt = static_cast<Datatype>(7u);
  EXPECT_THROW(apply(kSum, bogus_dt, buf, buf, 1), MpiError);
}

TEST(Op, Names) {
  EXPECT_EQ(op_name(kSum), "MPI_SUM");
  EXPECT_EQ(op_name(kLor), "MPI_LOR");
}

TEST(Op, SpanSizeMismatchIsInternalError) {
  std::vector<std::byte> small(4), large(8);
  EXPECT_THROW(apply(kSum, kInt32, small, large, 2), InternalError);
}

TEST(Op, AllOpsCommutativeOnIntegers) {
  // The collectives combine contributions in tree order; all provided ops
  // must commute for results to be schedule-independent.
  const std::vector<std::int32_t> a{7, -3, 100};
  const std::vector<std::int32_t> b{-2, 9, 41};
  for (Op op : {kSum, kProd, kMin, kMax, kBand, kBor, kBxor, kLand, kLor}) {
    const auto ab = apply_vec<std::int32_t>(op, kInt32, a, b);
    const auto ba = apply_vec<std::int32_t>(op, kInt32, b, a);
    EXPECT_EQ(ab, ba) << op_name(op);
  }
}

}  // namespace
}  // namespace fastfit::mpi

// Deterministic hang detection: injected divergences must be classified
// as deadlocks in milliseconds (no watchdog budget consumed), each with a
// world autopsy naming the divergence; genuine livelock still falls back
// to the watchdog; and a rank thread that refuses to die is quarantined
// instead of wedging the caller.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>

#include "minimpi/mpi.hpp"
#include "minimpi/progress.hpp"
#include "minimpi/quarantine.hpp"
#include "minimpi/world.hpp"

namespace fastfit::mpi {
namespace {

using namespace std::chrono_literals;

WorldOptions hang_world(int n) {
  WorldOptions opts;
  opts.nranks = n;
  // Deliberately generous: a detection that consumed the watchdog would
  // blow the elapsed-time assertions below.
  opts.watchdog = 10000ms;
  return opts;
}

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

RankSnapshot blocked_snap(const char* op, std::uint64_t comm,
                          std::uint32_t seq, int root, int wait_world) {
  RankSnapshot snap;
  snap.phase = RankPhase::Blocked;
  snap.has_op = true;
  snap.sig.op = op;
  snap.sig.comm = comm;
  snap.sig.seq = seq;
  snap.sig.root = root;
  snap.sig.wait_source = wait_world;
  snap.sig.wait_source_world = wait_world;
  return snap;
}

// --- analyze_deadlock: verdicts for the classic divergence shapes -------

TEST(DeadlockAnalysis, DivergentRoots) {
  std::vector<RankSnapshot> snaps{blocked_snap("MPI_Bcast", 1, 1, 0, 1),
                                  blocked_snap("MPI_Bcast", 1, 1, 2, 0)};
  const auto verdict = analyze_deadlock(snaps);
  EXPECT_NE(verdict.find("divergent roots"), std::string::npos) << verdict;
  EXPECT_NE(verdict.find("MPI_Bcast"), std::string::npos) << verdict;
}

TEST(DeadlockAnalysis, DivergentCommunicators) {
  std::vector<RankSnapshot> snaps{blocked_snap("MPI_Barrier", 1, 1, -1, 1),
                                  blocked_snap("MPI_Barrier", 7, 1, -1, 0)};
  EXPECT_NE(analyze_deadlock(snaps).find("divergent communicators"),
            std::string::npos);
}

TEST(DeadlockAnalysis, MismatchedSequenceNumbers) {
  std::vector<RankSnapshot> snaps{blocked_snap("MPI_Allreduce", 1, 3, -1, 1),
                                  blocked_snap("MPI_Allreduce", 1, 5, -1, 0)};
  const auto verdict = analyze_deadlock(snaps);
  EXPECT_NE(verdict.find("mismatched collective sequence"), std::string::npos)
      << verdict;
  EXPECT_NE(verdict.find("3..5"), std::string::npos) << verdict;
}

TEST(DeadlockAnalysis, MismatchedOperations) {
  std::vector<RankSnapshot> snaps{blocked_snap("MPI_Bcast", 1, 1, 0, 1),
                                  blocked_snap("MPI_Reduce", 1, 1, 0, 0)};
  EXPECT_NE(analyze_deadlock(snaps).find("mismatched operations"),
            std::string::npos);
}

TEST(DeadlockAnalysis, BlockedOnExitedPeerWinsOverOtherVerdicts) {
  // Divergent roots AND an exited peer: the exited peer is the proximate
  // cause and must be reported first.
  std::vector<RankSnapshot> snaps{blocked_snap("MPI_Bcast", 1, 1, 0, 1),
                                  RankSnapshot{}};
  snaps[1].phase = RankPhase::Exited;
  const auto verdict = analyze_deadlock(snaps);
  EXPECT_NE(verdict.find("already-exited peer"), std::string::npos) << verdict;
  EXPECT_NE(verdict.find("rank 0"), std::string::npos) << verdict;
}

TEST(DeadlockAnalysis, UnmatchedRendezvous) {
  std::vector<RankSnapshot> snaps{blocked_snap("MPI_Allreduce", 1, 1, -1, 1),
                                  blocked_snap("MPI_Allreduce", 1, 1, -1, 0)};
  EXPECT_NE(analyze_deadlock(snaps).find("unmatched rendezvous"),
            std::string::npos);
}

// --- end-to-end: injected divergences classified without the watchdog --

TEST(HangDetection, CorruptedRootIsDeterministicDeadlock) {
  World world(hang_world(4));
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = world.run([](Mpi& mpi) {
    // Rank 2 disagrees about the root: its binomial tree awaits a parent
    // that will never send.
    const std::int32_t root = mpi.world_rank() == 2 ? 1 : 0;
    (void)mpi.bcast_value<std::int32_t>(7, root);
  });
  EXPECT_LT(elapsed_ms(t0), 5000.0);  // 10s watchdog untouched
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::Timeout);
  ASSERT_TRUE(result.autopsy.has_value());
  EXPECT_TRUE(result.autopsy->deterministic);
  EXPECT_NE(result.event->message.find("deterministic deadlock"),
            std::string::npos)
      << result.event->message;
  EXPECT_EQ(result.leaked_threads, 0);
}

TEST(HangDetection, CorruptedCommIsDeterministicDeadlock) {
  World world(hang_world(4));
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = world.run([](Mpi& mpi) {
    // Same membership, different handle: rank 0 synchronizes on the split
    // communicator while everyone else uses the world — every barrier
    // message carries the wrong communicator tag for its receiver.
    const Comm sub = mpi.comm_split(kCommWorld, 0, mpi.world_rank());
    if (mpi.world_rank() == 0) {
      mpi.barrier(sub);
    } else {
      mpi.barrier();
    }
  });
  EXPECT_LT(elapsed_ms(t0), 5000.0);
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::Timeout);
  ASSERT_TRUE(result.autopsy.has_value());
  EXPECT_TRUE(result.autopsy->deterministic);
  EXPECT_NE(result.autopsy->verdict.find("communicator"), std::string::npos)
      << result.autopsy->verdict;
}

TEST(HangDetection, MismatchedSequenceIsDeterministicDeadlock) {
  World world(hang_world(3));
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = world.run([](Mpi& mpi) {
    auto v = mpi.allreduce_value<std::int32_t>(1, kSum);
    // Rank 1 stops a collective early; the others enter a second round
    // that can never complete.
    if (mpi.world_rank() != 1) v = mpi.allreduce_value<std::int32_t>(v, kSum);
    (void)v;
  });
  EXPECT_LT(elapsed_ms(t0), 5000.0);
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::Timeout);
  ASSERT_TRUE(result.autopsy.has_value());
  EXPECT_TRUE(result.autopsy->deterministic);
}

TEST(HangDetection, OneRankEarlyExitIsDeterministicDeadlock) {
  World world(hang_world(4));
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = world.run([](Mpi& mpi) {
    if (mpi.world_rank() == 0) return;  // never joins the collective
    (void)mpi.allreduce_value<std::int32_t>(1, kSum);
  });
  EXPECT_LT(elapsed_ms(t0), 5000.0);
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::Timeout);
  ASSERT_TRUE(result.autopsy.has_value());
  EXPECT_TRUE(result.autopsy->deterministic);
  ASSERT_EQ(result.autopsy->ranks.size(), 4u);
  EXPECT_EQ(result.autopsy->ranks[0].phase, RankPhase::Exited);
  // Satellite: the SimTimeout message names the reporting rank and its
  // pending-operation signature.
  EXPECT_NE(result.event->message.find("MPI_Allreduce"), std::string::npos)
      << result.event->message;
  EXPECT_NE(result.event->message.find("blocked in"), std::string::npos)
      << result.event->message;
}

TEST(HangDetection, GenuineLivelockFallsBackToWatchdog) {
  WorldOptions opts = hang_world(2);
  opts.watchdog = 300ms;
  World world(opts);
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = world.run([](Mpi& mpi) {
    // Never enters a rendezvous: the monitor sees Computing ranks forever
    // and must not declare anything; only check_deadline() can end this.
    for (;;) {
      mpi.check_deadline();
      std::this_thread::sleep_for(1ms);
    }
  });
  EXPECT_GE(elapsed_ms(t0), 250.0);  // the watchdog budget was consumed
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::Timeout);
  ASSERT_TRUE(result.autopsy.has_value());
  EXPECT_FALSE(result.autopsy->deterministic);
}

TEST(HangDetection, DisabledDetectionFallsBackToWatchdog) {
  WorldOptions opts = hang_world(4);
  opts.watchdog = 300ms;
  opts.hang_detection = false;
  World world(opts);
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = world.run([](Mpi& mpi) {
    if (mpi.world_rank() == 0) return;
    (void)mpi.allreduce_value<std::int32_t>(1, kSum);
  });
  EXPECT_GE(elapsed_ms(t0), 250.0);
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::Timeout);
  ASSERT_TRUE(result.autopsy.has_value());
  EXPECT_FALSE(result.autopsy->deterministic);
  // Satellite: the timeout message carries rank + pending-op signature
  // even on the watchdog path.
  EXPECT_NE(result.event->message.find("blocked in"), std::string::npos)
      << result.event->message;
  EXPECT_NE(result.event->message.find("MPI_Allreduce"), std::string::npos)
      << result.event->message;
}

// --- teardown audits and quarantine -------------------------------------

TEST(HangDetection, CleanRunAuditsZeroLeaks) {
  World world(hang_world(4));
  const auto result = world.run([](Mpi& mpi) {
    (void)mpi.allreduce_value<std::int32_t>(mpi.world_rank(), kSum);
  });
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.leaked_threads, 0);
  EXPECT_EQ(result.leaked_regions, 0u);
  EXPECT_EQ(result.undelivered_messages, 0u);
}

TEST(HangDetection, StragglerThreadIsQuarantinedAndReaped) {
  auto release = std::make_shared<std::atomic<bool>>(false);
  WorldOptions opts;
  opts.nranks = 2;
  opts.watchdog = 100ms;
  // Quarantine is a thread-engine mechanism: a rank that ignores every
  // cancellation point can wedge an OS thread, which the world abandons.
  // Under the fiber engine the same code would wedge the shared scheduler
  // thread — there is nothing to abandon, so this worst case is
  // thread-engine-only by construction.
  opts.engine = WorldEngine::Threads;
  World world(opts);
  world.add_keepalive(release);
  const auto adopted_before = ThreadQuarantine::instance().adopted_total();
  const auto result = world.run([release](Mpi& mpi) {
    if (mpi.world_rank() != 0) return;
    // Ignores check_deadline and poison: the worst-case wedged rank.
    while (!release->load()) std::this_thread::sleep_for(1ms);
  });
  EXPECT_EQ(result.leaked_threads, 1);
  EXPECT_EQ(ThreadQuarantine::instance().adopted_total(), adopted_before + 1);
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::Timeout);
  EXPECT_NE(result.event->message.find("teardown forced"), std::string::npos)
      << result.event->message;

  // Unwedge the rank: the quarantine must reap it back to zero.
  release->store(true);
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (ThreadQuarantine::instance().reap() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(ThreadQuarantine::instance().reap(), 0u);
}

}  // namespace
}  // namespace fastfit::mpi

// Prefix-replay world snapshots (minimpi/snapshot.hpp): chunk dedup,
// record -> build -> replay fidelity, in-flight pre-seeding across the
// cut, invalid cuts, and divergence detection.

#include "minimpi/snapshot.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "minimpi/memory.hpp"
#include "minimpi/mpi.hpp"

namespace fastfit::mpi {
namespace {

using namespace std::chrono_literals;

WorldOptions opts(int n) {
  WorldOptions o;
  o.nranks = n;
  o.watchdog = 5000ms;
  return o;
}

TEST(Snapshot, ChunkStoreDeduplicatesByContent) {
  ChunkStore store;
  const std::vector<std::byte> a(64, std::byte{0x5A});
  std::vector<std::byte> b(64, std::byte{0x5A});
  const auto first = store.intern(a.data(), a.size());
  const auto second = store.intern(b.data(), b.size());
  EXPECT_EQ(first.get(), second.get());  // same chunk, not just same bytes
  EXPECT_EQ(store.unique_chunks(), 1u);
  EXPECT_EQ(store.unique_bytes(), 64u);

  b[13] = std::byte{0x00};
  const auto third = store.intern(b.data(), b.size());
  EXPECT_NE(third.get(), first.get());
  EXPECT_EQ(store.unique_chunks(), 2u);
  EXPECT_EQ(store.unique_bytes(), 128u);

  // A prefix of an existing chunk is different content.
  const auto fourth = store.intern(a.data(), 32);
  EXPECT_NE(fourth.get(), first.get());
  EXPECT_EQ(fourth->size(), 32u);
}

// Three iterations of bcast + allreduce, with per-rank results collected
// outside the world so a live run and a replayed run can be compared
// byte for byte.
void iterative_kernel(Mpi& mpi, std::vector<double>& out, std::mutex& mu) {
  RegisteredBuffer<double> buf(mpi.registry(), 8);
  RegisteredBuffer<double> val(mpi.registry(), 1);
  RegisteredBuffer<double> sum(mpi.registry(), 1);
  double acc = 0.0;
  for (int iter = 0; iter < 3; ++iter) {
    if (mpi.rank() == 0) {
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = iter * 100.0 + static_cast<double>(i);
      }
    }
    mpi.bcast(buf.data(), 8, kDouble, 0);
    val[0] = buf[static_cast<std::size_t>(iter)] + mpi.rank();
    mpi.allreduce(val.data(), sum.data(), 1, kDouble, kSum);
    acc += sum[0] * (iter + 1);
  }
  std::lock_guard lock(mu);
  out[static_cast<std::size_t>(mpi.world_rank())] = acc;
}

// Runs the iterative kernel in a fresh world with the given snapshot
// hooks and returns the per-rank results.
std::vector<double> run_iterative(int n,
                                  std::shared_ptr<PrefixRecorder> recorder,
                                  std::shared_ptr<const WorldSnapshot> replay) {
  auto o = opts(n);
  o.recorder = recorder;
  o.replay = std::move(replay);
  World world(o);
  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  std::mutex mu;
  const auto result =
      world.run([&](Mpi& mpi) { iterative_kernel(mpi, out, mu); });
  EXPECT_TRUE(result.clean());
  return out;
}

// Pulls the (site_id, invocation) of the k-th allreduce from rank 0's
// recorded op stream — the test's stand-in for the campaign's
// enumeration.
std::pair<std::uint32_t, std::uint64_t> nth_allreduce(
    const WorldRecording& recording, std::size_t k) {
  std::size_t seen = 0;
  for (const auto& op : recording.ops[0]) {
    if (op.kind == RecordedOp::Kind::Collective &&
        op.coll == CollectiveKind::Allreduce) {
      if (seen++ == k) return {op.site_id, op.invocation};
    }
  }
  ADD_FAILURE() << "allreduce #" << k << " not recorded";
  return {0, 0};
}

TEST(Snapshot, ReplayedPrefixReproducesTheLiveRun) {
  const int n = 6;
  const auto live = run_iterative(n, nullptr, nullptr);

  auto recorder = std::make_shared<PrefixRecorder>(n);
  const auto recorded = run_iterative(n, recorder, nullptr);
  EXPECT_EQ(recorded, live);  // recording hooks must not perturb the run
  const auto recording = recorder->finish();
  ASSERT_TRUE(recording->replayable);
  EXPECT_EQ(recording->nranks, n);
  EXPECT_GT(recording->payload_bytes, 0u);
  // 6 collectives per rank (3 bcast + 3 allreduce), no p2p.
  EXPECT_EQ(recording->total_ops, static_cast<std::size_t>(n) * 6u);

  // Cut at the *second* allreduce: a non-trivial prefix (bcast x2 +
  // allreduce + bcast) on every rank, and a live suffix.
  const auto [site, inv] = nth_allreduce(*recording, 1);
  const auto snapshot = WorldSnapshot::build(recording, site, inv);
  ASSERT_NE(snapshot, nullptr);
  ASSERT_EQ(snapshot->cut.size(), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(snapshot->cut[static_cast<std::size_t>(r)], 3u) << "rank " << r;
  }
  EXPECT_TRUE(snapshot->preseed.empty());

  const auto replayed = run_iterative(n, nullptr, snapshot);
  EXPECT_EQ(replayed, live);

  // The first collective is also a valid (empty-prefix) cut.
  const auto [site0, inv0] = nth_allreduce(*recording, 0);
  const auto first = WorldSnapshot::build(recording, site0, inv0);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(run_iterative(n, nullptr, first), live);
}

TEST(Snapshot, MissingSiteOrInvocationIsNotACut) {
  const int n = 4;
  auto recorder = std::make_shared<PrefixRecorder>(n);
  run_iterative(n, recorder, nullptr);
  const auto recording = recorder->finish();
  const auto [site, inv] = nth_allreduce(*recording, 0);
  EXPECT_EQ(WorldSnapshot::build(recording, site ^ 0xdead, inv), nullptr);
  EXPECT_EQ(WorldSnapshot::build(recording, site, inv + 100), nullptr);
}

TEST(Snapshot, InFlightMessageIsPreseededAcrossTheCut) {
  // Rank 0 sends before the cut; rank 1 receives after it. The message
  // is in flight across the cut, so the snapshot must pre-seed it and
  // the replayed world's live suffix must receive it intact.
  const int n = 2;
  const int kTag = 7;
  auto kernel = [&](Mpi& mpi, std::vector<double>& got, std::mutex& mu) {
    RegisteredBuffer<double> msg(mpi.registry(), 4);
    if (mpi.rank() == 0) {
      for (std::size_t i = 0; i < msg.size(); ++i) {
        msg[i] = 2.5 * static_cast<double>(i + 1);
      }
      mpi.send(msg.data(), 4, kDouble, 1, kTag);
    }
    mpi.barrier();
    mpi.barrier();  // <- the cut collective
    if (mpi.rank() == 1) {
      mpi.recv(msg.data(), 4, kDouble, 0, kTag);
      std::lock_guard lock(mu);
      got.assign(msg.begin(), msg.end());
    }
  };

  auto record_opts = opts(n);
  auto recorder = std::make_shared<PrefixRecorder>(n);
  record_opts.recorder = recorder;
  World record_world(record_opts);
  std::vector<double> live;
  std::mutex mu;
  ASSERT_TRUE(
      record_world.run([&](Mpi& mpi) { kernel(mpi, live, mu); }).clean());
  const auto recording = recorder->finish();
  ASSERT_TRUE(recording->replayable);

  // The second barrier on rank 0's stream: ops are send, barrier, barrier.
  const auto& rank0 = recording->ops[0];
  ASSERT_EQ(rank0.size(), 3u);
  ASSERT_EQ(rank0[2].kind, RecordedOp::Kind::Collective);
  const auto snapshot =
      WorldSnapshot::build(recording, rank0[2].site_id, rank0[2].invocation);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->cut[0], 2u);  // prefix: send + barrier
  EXPECT_EQ(snapshot->cut[1], 1u);  // prefix: barrier
  ASSERT_EQ(snapshot->preseed.size(), 1u);
  EXPECT_EQ(snapshot->preseed[0].dest_world, 1);
  ASSERT_NE(snapshot->preseed[0].payload, nullptr);
  EXPECT_EQ(snapshot->preseed[0].payload->size(), 4 * sizeof(double));

  auto replay_opts = opts(n);
  replay_opts.replay = snapshot;
  World replay_world(replay_opts);
  std::vector<double> replayed;
  ASSERT_TRUE(
      replay_world.run([&](Mpi& mpi) { kernel(mpi, replayed, mu); }).clean());
  EXPECT_EQ(replayed, live);
}

TEST(Snapshot, PrefixReceiveOfASuffixSendInvalidatesTheCut) {
  // Built synthetically: the live transport cannot execute this shape
  // (it deadlocks), but a recording scanner must still reject it — a
  // prefix receive whose matching send happens after the sender's cut
  // would need a message that does not exist yet at the cut.
  auto recording = std::make_shared<WorldRecording>();
  recording->nranks = 2;
  recording->ops.resize(2);
  ChunkStore chunks;
  const double payload = 41.5;
  const auto chunk = chunks.intern(&payload, sizeof payload);

  RecordedOp cut0;  // rank 0: the cut collective first, then the send
  cut0.kind = RecordedOp::Kind::Collective;
  cut0.coll = CollectiveKind::Barrier;
  cut0.site_id = 11;
  cut0.invocation = 1;
  RecordedOp send;
  send.kind = RecordedOp::Kind::Send;
  send.self_comm = 0;
  send.peer = 1;
  send.peer_world = 1;
  send.transport_tag = 42;
  send.writes.push_back(chunk);
  recording->ops[0] = {cut0, send};

  RecordedOp recv;  // rank 1: the receive precedes its cut
  recv.kind = RecordedOp::Kind::Recv;
  recv.self_comm = 1;
  recv.peer = 0;
  recv.transport_tag = 42;
  recv.writes.push_back(chunk);
  RecordedOp cut1 = cut0;
  recording->ops[1] = {recv, cut1};
  recording->total_ops = 4;

  EXPECT_EQ(WorldSnapshot::build(recording, 11, 1), nullptr);

  // Control: send in the sender's prefix, receive in the receiver's
  // suffix — the message is genuinely in flight at the cut, so the same
  // log becomes replayable with the send pre-seeded.
  recording->ops[0] = {send, cut0};
  recording->ops[1] = {cut1, recv};
  const auto valid = WorldSnapshot::build(recording, 11, 1);
  ASSERT_NE(valid, nullptr);
  EXPECT_EQ(valid->preseed.size(), 1u);
}

TEST(Snapshot, DivergenceRaisesReplayErrorNotAnOutcome) {
  // Record with count 8, replay an application that calls bcast with
  // count 4: the replayer must refuse (ReplayError escapes world.run),
  // never silently serve the recorded bytes.
  const int n = 3;
  std::atomic<std::int32_t> count{8};
  auto kernel = [&](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 8);
    if (mpi.rank() == 0) buf[0] = 6.25;
    mpi.bcast(buf.data(), count.load(), kDouble, 0);
    mpi.barrier();  // the cut
    mpi.barrier();
  };

  auto record_opts = opts(n);
  auto recorder = std::make_shared<PrefixRecorder>(n);
  record_opts.recorder = recorder;
  World record_world(record_opts);
  ASSERT_TRUE(record_world.run(kernel).clean());
  const auto recording = recorder->finish();
  const auto& rank0 = recording->ops[0];
  ASSERT_EQ(rank0.size(), 3u);
  const auto snapshot =
      WorldSnapshot::build(recording, rank0[1].site_id, rank0[1].invocation);
  ASSERT_NE(snapshot, nullptr);

  count.store(4);
  auto replay_opts = opts(n);
  replay_opts.replay = snapshot;
  World replay_world(replay_opts);
  EXPECT_THROW(replay_world.run(kernel), ReplayError);
}

TEST(Snapshot, NonblockingReceiveMarksRecordingUnsupported) {
  const int n = 2;
  auto o = opts(n);
  auto recorder = std::make_shared<PrefixRecorder>(n);
  o.recorder = recorder;
  World world(o);
  const auto result = world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 2);
    if (mpi.rank() == 0) {
      buf[0] = 1.0;
      mpi.send(buf.data(), 2, kDouble, 1, 3);
    } else {
      auto req = mpi.irecv(buf.data(), 2, kDouble, 0, 3);
      mpi.wait(req);
    }
  });
  ASSERT_TRUE(result.clean());
  const auto recording = recorder->finish();
  EXPECT_FALSE(recording->replayable);
  EXPECT_NE(recording->unsupported_reason.find("irecv"), std::string::npos);
  EXPECT_EQ(WorldSnapshot::build(recording, 1, 1), nullptr);
}

}  // namespace
}  // namespace fastfit::mpi

#include <gtest/gtest.h>

#include "minimpi/datatype.hpp"
#include "minimpi/op.hpp"
#include "minimpi/types.hpp"
#include "support/bitops.hpp"
#include "support/error.hpp"

namespace fastfit::mpi {
namespace {

TEST(Handles, AllTableDatatypesValidWithExpectedSizes) {
  EXPECT_TRUE(is_valid(kChar));
  EXPECT_TRUE(is_valid(kDouble));
  EXPECT_EQ(datatype_size(kChar), 1u);
  EXPECT_EQ(datatype_size(kByte), 1u);
  EXPECT_EQ(datatype_size(kInt32), 4u);
  EXPECT_EQ(datatype_size(kUint32), 4u);
  EXPECT_EQ(datatype_size(kInt64), 8u);
  EXPECT_EQ(datatype_size(kUint64), 8u);
  EXPECT_EQ(datatype_size(kFloat), 4u);
  EXPECT_EQ(datatype_size(kDouble), 8u);
}

TEST(Handles, DatatypeNames) {
  EXPECT_EQ(datatype_name(kDouble), "MPI_DOUBLE");
  EXPECT_EQ(datatype_name(kInt32), "MPI_INT");
}

TEST(Handles, InvalidDatatypeRejected) {
  const auto bogus = static_cast<Datatype>(0x12345678u);
  EXPECT_FALSE(is_valid(bogus));
  EXPECT_THROW(datatype_size(bogus), MpiError);
  const auto out_of_table = make_datatype(kNumDatatypes);
  EXPECT_FALSE(is_valid(out_of_table));
}

TEST(Handles, MagicBitsDetectMostSingleBitFlips) {
  // The design intent: a random flip of a valid handle usually breaks the
  // magic tag (-> MPI_ERR), and only low-bit flips can reach another valid
  // handle (-> silent confusion). Quantify it.
  int invalid = 0;
  int other_valid = 0;
  for (std::size_t bit = 0; bit < 32; ++bit) {
    const auto flipped =
        static_cast<Datatype>(with_flipped_bit(raw(kDouble), bit));
    if (!is_valid(flipped)) {
      ++invalid;
    } else {
      EXPECT_NE(flipped, kDouble);  // a flip never preserves the value
      ++other_valid;
    }
  }
  EXPECT_GE(invalid, 28);
  EXPECT_GE(other_valid, 1);  // the low bits can land on a sibling type
}

TEST(Handles, OpMagicDistinctFromDatatypeMagic) {
  // An op handle must never validate as a datatype and vice versa, so a
  // swapped-parameter corruption is caught.
  EXPECT_FALSE(is_valid(static_cast<Datatype>(raw(kSum))));
  EXPECT_FALSE(is_valid(static_cast<Op>(raw(kDouble))));
}

TEST(Handles, CollectiveKindNamesAndTaxonomy) {
  EXPECT_STREQ(to_string(CollectiveKind::Allreduce), "MPI_Allreduce");
  EXPECT_STREQ(to_string(CollectiveKind::Barrier), "MPI_Barrier");
  EXPECT_TRUE(is_rooted(CollectiveKind::Bcast));
  EXPECT_TRUE(is_rooted(CollectiveKind::Reduce));
  EXPECT_TRUE(is_rooted(CollectiveKind::Scatter));
  EXPECT_TRUE(is_rooted(CollectiveKind::Gather));
  EXPECT_FALSE(is_rooted(CollectiveKind::Allreduce));
  EXPECT_FALSE(is_rooted(CollectiveKind::Barrier));
  EXPECT_FALSE(is_rooted(CollectiveKind::Alltoallv));
  EXPECT_TRUE(has_op(CollectiveKind::Allreduce));
  EXPECT_TRUE(has_op(CollectiveKind::Scan));
  EXPECT_FALSE(has_op(CollectiveKind::Bcast));
  EXPECT_FALSE(has_data(CollectiveKind::Barrier));
  EXPECT_TRUE(has_data(CollectiveKind::Bcast));
}

TEST(Handles, DatatypeOfMapsCppTypes) {
  EXPECT_EQ(datatype_of<double>(), kDouble);
  EXPECT_EQ(datatype_of<std::int32_t>(), kInt32);
  EXPECT_EQ(datatype_of<std::uint64_t>(), kUint64);
}

}  // namespace
}  // namespace fastfit::mpi

// Emergent fault behaviour: corrupting a collective parameter through the
// tool-hook chain must produce the failure class the paper's taxonomy
// expects — without any failure-specific code in the collectives
// themselves. These tests install a minimal corrupting hook directly; the
// full injector (src/inject) builds on the same mechanism.

#include <gtest/gtest.h>

#include "minimpi/mpi.hpp"
#include "support/bitops.hpp"

namespace fastfit::mpi {
namespace {

using namespace std::chrono_literals;

WorldOptions opts(int n, std::chrono::milliseconds watchdog = 3000ms) {
  WorldOptions o;
  o.nranks = n;
  o.watchdog = watchdog;
  return o;
}

/// Applies a user-supplied mutation to the first collective call on a
/// chosen rank, then stands down.
class OneShotCorruptor : public ToolHooks {
 public:
  OneShotCorruptor(int rank, std::function<void(CollectiveCall&)> mutate)
      : rank_(rank), mutate_(std::move(mutate)) {}

  void on_enter(CollectiveCall& call, Mpi& mpi) override {
    if (mpi.world_rank() == rank_ && !done_.exchange(true)) {
      mutate_(call);
    }
  }
  void on_exit(const CollectiveCall&, Mpi&) override {}

 private:
  int rank_;
  std::function<void(CollectiveCall&)> mutate_;
  std::atomic<bool> done_{false};
};

WorldResult run_allreduce_with(World& world, ToolHooks& hooks) {
  world.set_tools(&hooks);
  return world.run([](Mpi& mpi) {
    RegisteredBuffer<double> send(mpi.registry(), 8, 1.0);
    RegisteredBuffer<double> recv(mpi.registry(), 8);
    mpi.allreduce(send.data(), recv.data(), 8, kDouble, kSum);
  });
}

TEST(FaultyCollectives, InvalidDatatypeHandleIsMpiErr) {
  World world(opts(4));
  OneShotCorruptor hooks(2, [](CollectiveCall& call) {
    call.datatype = static_cast<Datatype>(
        with_flipped_bit(raw(call.datatype), 25));  // breaks the magic tag
  });
  const auto result = run_allreduce_with(world, hooks);
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::MpiErr);
  EXPECT_EQ(*result.event->mpi_code, MpiErrc::InvalidDatatype);
  EXPECT_EQ(result.event->rank, 2);
}

TEST(FaultyCollectives, NegativeCountIsMpiErr) {
  World world(opts(4));
  OneShotCorruptor hooks(1, [](CollectiveCall& call) {
    call.count = with_flipped_bit(call.count, 31);  // sign bit
  });
  const auto result = run_allreduce_with(world, hooks);
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::MpiErr);
  EXPECT_EQ(*result.event->mpi_code, MpiErrc::InvalidCount);
}

TEST(FaultyCollectives, HugeCountIsSimulatedSegFault) {
  World world(opts(4));
  OneShotCorruptor hooks(0, [](CollectiveCall& call) {
    call.count = with_flipped_bit(call.count, 20);  // 8 -> ~1M elements
  });
  const auto result = run_allreduce_with(world, hooks);
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::SegFault);
  EXPECT_EQ(result.event->rank, 0);
}

TEST(FaultyCollectives, InvalidOpHandleIsMpiErr) {
  World world(opts(4));
  OneShotCorruptor hooks(3, [](CollectiveCall& call) {
    call.op = static_cast<Op>(with_flipped_bit(raw(call.op), 24));
  });
  const auto result = run_allreduce_with(world, hooks);
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::MpiErr);
  EXPECT_EQ(*result.event->mpi_code, MpiErrc::InvalidOp);
}

TEST(FaultyCollectives, DifferentValidOpSilentlyCorruptsResult) {
  // SUM -> PROD on one rank: no error anywhere, wrong numbers — the
  // WRONG_ANS precursor the trial runner detects by checksum.
  World world(opts(4));
  OneShotCorruptor hooks(1, [](CollectiveCall& call) { call.op = kProd; });
  world.set_tools(&hooks);
  double observed = 0.0;
  const auto result = world.run([&observed](Mpi& mpi) {
    RegisteredBuffer<double> send(mpi.registry(), 1, 2.0);
    RegisteredBuffer<double> recv(mpi.registry(), 1);
    mpi.allreduce(send.data(), recv.data(), 1, kDouble, kSum);
    if (mpi.world_rank() == 1) observed = recv[0];
  });
  EXPECT_TRUE(result.clean());
  EXPECT_NE(observed, 8.0);  // 2+2+2+2; rank 1 combined with products
}

TEST(FaultyCollectives, InvalidCommHandleIsMpiErr) {
  World world(opts(4));
  OneShotCorruptor hooks(2, [](CollectiveCall& call) {
    call.comm = static_cast<Comm>(with_flipped_bit(raw(call.comm), 27));
  });
  const auto result = run_allreduce_with(world, hooks);
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::MpiErr);
  EXPECT_EQ(*result.event->mpi_code, MpiErrc::InvalidComm);
}

TEST(FaultyCollectives, RootOutOfRangeIsMpiErr) {
  World world(opts(4));
  OneShotCorruptor hooks(1, [](CollectiveCall& call) {
    call.root = with_flipped_bit(call.root, 10);  // 0 -> 1024
  });
  world.set_tools(&hooks);
  const auto result = world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 4, 1.0);
    mpi.bcast(buf.data(), 4, kDouble, 0);
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::MpiErr);
  EXPECT_EQ(*result.event->mpi_code, MpiErrc::InvalidRoot);
}

TEST(FaultyCollectives, DivergentValidRootHangsTheJob) {
  // Rank 3 believes the bcast is rooted at 1; everyone else at 0. In rank
  // 3's tree its parent is rank 1, which (being a leaf of the true tree)
  // never sends to it: the receive goes unmatched, the watchdog fires —
  // the paper's INF_LOOP response.
  World world(opts(4, 200ms));
  OneShotCorruptor hooks(3, [](CollectiveCall& call) { call.root = 1; });
  world.set_tools(&hooks);
  const auto result = world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 4, 1.0);
    mpi.bcast(buf.data(), 4, kDouble, 0);
  });
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.event->type, EventType::Timeout);
}

TEST(FaultyCollectives, DivergentValidRootCanAlsoCorruptSilently) {
  // Rank 1 believing *itself* the root skips its receive and keeps stale
  // data: the job completes but rank 1's buffer is wrong — the other
  // manifestation of a root fault (WRONG_ANS rather than INF_LOOP).
  World world(opts(4));
  OneShotCorruptor hooks(1, [](CollectiveCall& call) { call.root = 1; });
  world.set_tools(&hooks);
  std::atomic<double> rank1_value{0.0};
  const auto result = world.run([&rank1_value](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 1,
                                 mpi.rank() == 0 ? 7.0 : -1.0);
    mpi.bcast(buf.data(), 1, kDouble, 0);
    if (mpi.world_rank() == 1) rank1_value.store(buf[0]);
  });
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(rank1_value.load(), -1.0);  // never updated
}

TEST(FaultyCollectives, SendBufferBitFlipPropagatesSilently) {
  World world(opts(4));
  OneShotCorruptor hooks(2, [](CollectiveCall& call) {
    auto* bytes = static_cast<std::byte*>(call.sendbuf);
    flip_bit(std::span<std::byte>(bytes, 8 * sizeof(double)), 7);
  });
  world.set_tools(&hooks);
  std::atomic<int> wrong{0};
  const auto result = world.run([&wrong](Mpi& mpi) {
    RegisteredBuffer<double> send(mpi.registry(), 8, 1.0);
    RegisteredBuffer<double> recv(mpi.registry(), 8);
    mpi.allreduce(send.data(), recv.data(), 8, kDouble, kSum);
    for (std::size_t i = 0; i < 8; ++i) {
      if (recv[i] != 4.0) wrong.fetch_add(1);
    }
  });
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(wrong.load(), 4);  // one corrupted element, observed by all ranks
}

TEST(FaultyCollectives, DatatypeConfusionBetweenValidTypesShearsPayloads) {
  // double -> float on one rank: transfers shrink; depending on role this
  // surfaces as truncation (MPI_ERR) or a silent partial payload. Either
  // way it must not pass as fully clean AND correct.
  World world(opts(4));
  OneShotCorruptor hooks(1, [](CollectiveCall& call) {
    call.datatype = kFloat;
  });
  world.set_tools(&hooks);
  std::atomic<bool> rank0_correct{true};
  const auto result = world.run([&rank0_correct](Mpi& mpi) {
    RegisteredBuffer<double> send(mpi.registry(), 8, 1.0);
    RegisteredBuffer<double> recv(mpi.registry(), 8);
    mpi.allreduce(send.data(), recv.data(), 8, kDouble, kSum);
    if (mpi.world_rank() == 0) {
      for (std::size_t i = 0; i < 8; ++i) {
        if (recv[i] != 4.0) rank0_correct.store(false);
      }
    }
  });
  if (result.clean()) {
    EXPECT_FALSE(rank0_correct.load());
  } else {
    EXPECT_EQ(result.event->type, EventType::MpiErr);
  }
}

TEST(FaultyCollectives, RecvBufFlipBeforeCollectiveIsOverwritten) {
  // The paper observes recvbuf faults are near-harmless: the collective
  // call overwrites the flipped bit.
  World world(opts(4));
  OneShotCorruptor hooks(2, [](CollectiveCall& call) {
    auto* bytes = static_cast<std::byte*>(call.recvbuf);
    flip_bit(std::span<std::byte>(bytes, 8 * sizeof(double)), 13);
  });
  world.set_tools(&hooks);
  std::atomic<int> wrong{0};
  const auto result = world.run([&wrong](Mpi& mpi) {
    RegisteredBuffer<double> send(mpi.registry(), 8, 1.0);
    RegisteredBuffer<double> recv(mpi.registry(), 8);
    mpi.allreduce(send.data(), recv.data(), 8, kDouble, kSum);
    for (std::size_t i = 0; i < 8; ++i) {
      if (recv[i] != 4.0) wrong.fetch_add(1);
    }
  });
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(wrong.load(), 0);
}

TEST(FaultyCollectives, HooksSeeCallSiteIdentity) {
  World world(opts(2));
  std::atomic<std::uint32_t> site{0};
  std::atomic<std::uint64_t> last_invocation{0};
  class Recorder : public ToolHooks {
   public:
    Recorder(std::atomic<std::uint32_t>& s, std::atomic<std::uint64_t>& i)
        : site_(s), inv_(i) {}
    void on_enter(CollectiveCall& call, Mpi&) override {
      site_.store(call.site_id);
      inv_.store(call.invocation);
    }
    void on_exit(const CollectiveCall&, Mpi&) override {}

   private:
    std::atomic<std::uint32_t>& site_;
    std::atomic<std::uint64_t>& inv_;
  } recorder(site, last_invocation);
  world.set_tools(&recorder);
  world.run([](Mpi& mpi) {
    for (int i = 0; i < 3; ++i) mpi.barrier();  // one site, three invocations
  });
  EXPECT_NE(site.load(), 0u);
  EXPECT_EQ(last_invocation.load(), 2u);
}

}  // namespace
}  // namespace fastfit::mpi

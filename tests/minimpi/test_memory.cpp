#include "minimpi/memory.hpp"

#include <gtest/gtest.h>

#include <array>

#include "support/error.hpp"

namespace fastfit::mpi {
namespace {

TEST(Memory, CoversRegisteredRange) {
  MemoryRegistry reg;
  std::array<double, 16> buf{};
  reg.add(buf.data(), sizeof(buf));
  EXPECT_TRUE(reg.covers(buf.data(), sizeof(buf)));
  EXPECT_TRUE(reg.covers(buf.data() + 4, 8 * sizeof(double)));
  EXPECT_NO_THROW(reg.check(buf.data(), sizeof(buf)));
  reg.remove(buf.data());
}

TEST(Memory, OverrunRaisesSimSegFault) {
  MemoryRegistry reg;
  std::array<double, 16> buf{};
  reg.add(buf.data(), sizeof(buf));
  EXPECT_THROW(reg.check(buf.data(), sizeof(buf) + 1), SimSegFault);
  EXPECT_THROW(reg.check(buf.data() + 8, 9 * sizeof(double)), SimSegFault);
  reg.remove(buf.data());
}

TEST(Memory, UnregisteredPointerFaults) {
  MemoryRegistry reg;
  int x = 0;
  EXPECT_FALSE(reg.covers(&x, sizeof(x)));
  EXPECT_THROW(reg.check(&x, sizeof(x)), SimSegFault);
}

TEST(Memory, ZeroByteAccessAlwaysAllowed) {
  MemoryRegistry reg;
  EXPECT_TRUE(reg.covers(nullptr, 0));
  EXPECT_NO_THROW(reg.check(nullptr, 0));
  int x = 0;
  EXPECT_NO_THROW(reg.check(&x, 0));
}

TEST(Memory, NullWithBytesFaults) {
  MemoryRegistry reg;
  EXPECT_THROW(reg.check(nullptr, 8), SimSegFault);
}

TEST(Memory, RemoveUnknownIsInternalError) {
  MemoryRegistry reg;
  int x = 0;
  EXPECT_THROW(reg.remove(&x), InternalError);
}

TEST(Memory, OverlappingRegistrationRejected) {
  MemoryRegistry reg;
  std::array<char, 64> buf{};
  reg.add(buf.data(), 64);
  EXPECT_THROW(reg.add(buf.data() + 8, 8), InternalError);
  EXPECT_THROW(reg.add(buf.data(), 64), InternalError);
  reg.remove(buf.data());
  EXPECT_NO_THROW(reg.add(buf.data() + 8, 8));
  reg.remove(buf.data() + 8);
}

TEST(Memory, AdjacentRegionsDoNotMerge) {
  // A transfer spanning two separately registered buffers is still a
  // violation: real allocators give no such contiguity guarantee.
  MemoryRegistry reg;
  std::array<char, 32> buf{};
  reg.add(buf.data(), 16);
  reg.add(buf.data() + 16, 16);
  EXPECT_TRUE(reg.covers(buf.data(), 16));
  EXPECT_TRUE(reg.covers(buf.data() + 16, 16));
  EXPECT_FALSE(reg.covers(buf.data(), 32));
  reg.remove(buf.data());
  reg.remove(buf.data() + 16);
}

TEST(Memory, SimSegFaultMessageNamesTheAccess) {
  MemoryRegistry reg;
  int x = 0;
  try {
    reg.check(&x, 4, "bcast receive buffer");
    FAIL();
  } catch (const SimSegFault& e) {
    EXPECT_NE(std::string(e.what()).find("bcast receive buffer"),
              std::string::npos);
  }
}

TEST(Memory, RegisteredBufferRaii) {
  MemoryRegistry reg;
  {
    RegisteredBuffer<double> buf(reg, 8, 1.5);
    EXPECT_EQ(reg.region_count(), 1u);
    EXPECT_EQ(buf.size(), 8u);
    EXPECT_DOUBLE_EQ(buf[3], 1.5);
    EXPECT_TRUE(reg.covers(buf.data(), 8 * sizeof(double)));
  }
  EXPECT_EQ(reg.region_count(), 0u);
}

TEST(Memory, RegionCount) {
  MemoryRegistry reg;
  RegisteredBuffer<int> a(reg, 4);
  RegisteredBuffer<int> b(reg, 4);
  EXPECT_EQ(reg.region_count(), 2u);
}

}  // namespace
}  // namespace fastfit::mpi

// Alternative collective algorithms: functional equivalence to the
// defaults in fault-free runs, and the algorithm-specific fault
// behaviours that motivate the ablation.

#include <gtest/gtest.h>

#include "minimpi/mpi.hpp"

namespace fastfit::mpi {
namespace {

using namespace std::chrono_literals;

WorldOptions opts(int n, CollectiveAlgorithms algorithms,
                  std::chrono::milliseconds watchdog = 5000ms) {
  WorldOptions o;
  o.nranks = n;
  o.watchdog = watchdog;
  o.algorithms = algorithms;
  return o;
}

CollectiveAlgorithms chain_and_reduce_bcast() {
  CollectiveAlgorithms a;
  a.bcast = CollectiveAlgorithms::Bcast::Chain;
  a.allreduce = CollectiveAlgorithms::Allreduce::ReduceBcast;
  return a;
}

class VariantSweep : public ::testing::TestWithParam<int> {};

TEST_P(VariantSweep, ChainBcastDeliversFromEveryRoot) {
  World world(opts(GetParam(), chain_and_reduce_bcast()));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    for (std::int32_t root = 0; root < mpi.size(); ++root) {
      RegisteredBuffer<std::int32_t> buf(mpi.registry(), 3);
      if (mpi.rank() == root) {
        for (std::size_t i = 0; i < 3; ++i) {
          buf[i] = root * 10 + static_cast<std::int32_t>(i);
        }
      }
      mpi.bcast(buf.data(), 3, kInt32, root);
      for (std::size_t i = 0; i < 3; ++i) {
        ASSERT_EQ(buf[i], root * 10 + static_cast<std::int32_t>(i));
      }
    }
  }).clean());
}

TEST_P(VariantSweep, ReduceBcastAllreduceMatchesDefault) {
  const int n = GetParam();
  std::vector<double> via_default;
  std::vector<double> via_variant;
  for (bool variant : {false, true}) {
    CollectiveAlgorithms algorithms;
    if (variant) algorithms = chain_and_reduce_bcast();
    World world(opts(n, algorithms));
    auto& sink = variant ? via_variant : via_default;
    sink.assign(static_cast<std::size_t>(n), 0.0);
    EXPECT_TRUE(world.run([&sink](Mpi& mpi) {
      RegisteredBuffer<double> send(mpi.registry(), 4);
      RegisteredBuffer<double> recv(mpi.registry(), 4);
      for (std::size_t i = 0; i < 4; ++i) {
        send[i] = mpi.rank() * 1.5 + static_cast<double>(i);
      }
      mpi.allreduce(send.data(), recv.data(), 4, kDouble, kSum);
      sink[static_cast<std::size_t>(mpi.rank())] = recv[0] + recv[3];
    }).clean());
  }
  EXPECT_EQ(via_default, via_variant);
}

INSTANTIATE_TEST_SUITE_P(Ranks, VariantSweep, ::testing::Values(1, 2, 5, 8, 12));

TEST(CollVariants, ChainBcastZeroCount) {
  World world(opts(4, chain_and_reduce_bcast()));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 1, 7.0);
    mpi.bcast(buf.data(), 0, kDouble, 0);
    EXPECT_DOUBLE_EQ(buf[0], 7.0);
  }).clean());
}

TEST(CollVariants, ChainBreakStallsDownstreamOnly) {
  // Chain-specific fault behaviour: if a middle rank believes a different
  // root, its receive direction flips and the pipeline breaks there.
  class RootFlip : public ToolHooks {
   public:
    void on_enter(CollectiveCall& call, Mpi& mpi) override {
      if (mpi.world_rank() == 2 && call.kind == CollectiveKind::Bcast &&
          !fired_.exchange(true)) {
        call.root = 2;  // believes itself the root: never receives
      }
    }
    void on_exit(const CollectiveCall&, Mpi&) override {}

   private:
    std::atomic<bool> fired_{false};
  } hooks;

  CollectiveAlgorithms algorithms;
  algorithms.bcast = CollectiveAlgorithms::Bcast::Chain;
  World world(opts(6, algorithms, 200ms));
  world.set_tools(&hooks);
  const auto result = world.run([](Mpi& mpi) {
    RegisteredBuffer<double> buf(mpi.registry(), 2,
                                 mpi.rank() == 0 ? 9.0 : 0.0);
    mpi.bcast(buf.data(), 2, kDouble, 0);
  });
  // Rank 2 skips its receive and forwards stale data; ranks 3..5 get the
  // wrong payload but nobody deadlocks (rank 2 still forwards), OR if the
  // forward direction also diverges the job hangs. Either way: not clean
  // with correct data — the run must end with SUCCESS-but-wrong-data
  // (clean world, wrong buffer) or a timeout.
  if (!result.clean()) {
    EXPECT_EQ(result.event->type, EventType::Timeout);
  }
}

TEST(CollVariants, MixedAlgorithmsInteroperateWithOtherCollectives) {
  World world(opts(6, chain_and_reduce_bcast()));
  EXPECT_TRUE(world.run([](Mpi& mpi) {
    // bcast -> allreduce -> barrier -> allgather pipeline, variant algos.
    const double seedv = mpi.bcast_value(mpi.rank() == 0 ? 2.5 : 0.0, 0);
    const double total = mpi.allreduce_value(seedv, kSum);
    EXPECT_DOUBLE_EQ(total, 2.5 * 6);
    mpi.barrier();
    RegisteredBuffer<std::int32_t> mine(mpi.registry(), 1, mpi.rank());
    RegisteredBuffer<std::int32_t> all(mpi.registry(), 6);
    mpi.allgather(mine.data(), 1, kInt32, all.data(), 1, kInt32);
    for (int r = 0; r < 6; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r)], r);
    }
  }).clean());
}

}  // namespace
}  // namespace fastfit::mpi

// Profiler integration: the mpiP/Callgrind/backtrace stand-ins must record
// what the pruning layers and ML features consume.

#include <gtest/gtest.h>

#include <atomic>

#include "minimpi/mpi.hpp"
#include "pmpi/chain.hpp"
#include "profile/profiler.hpp"
#include "profile/queries.hpp"

namespace fastfit::profile {
namespace {

using namespace std::chrono_literals;

mpi::WorldOptions opts(int n) {
  mpi::WorldOptions o;
  o.nranks = n;
  o.watchdog = 5000ms;
  return o;
}

TEST(Profiler, RecordsSitesInvocationsAndKinds) {
  trace::ContextRegistry contexts(4);
  Profiler profiler(contexts);
  mpi::World world(opts(4));
  world.set_tools(&profiler);
  world.run([&](mpi::Mpi& mpi) {
    auto& ctx = contexts.of(mpi.world_rank());
    for (int i = 0; i < 5; ++i) {
      trace::FunctionScope scope(ctx, "step");
      mpi::RegisteredBuffer<double> buf(mpi.registry(), 4, 1.0);
      mpi.allreduce(buf.data(), buf.data(), 4, mpi::kDouble, mpi::kSum);
    }
    mpi.barrier();
  });

  for (int r = 0; r < 4; ++r) {
    const auto& prof = profiler.rank(r);
    ASSERT_EQ(prof.sites.size(), 2u);
    bool saw_allreduce = false;
    bool saw_barrier = false;
    for (const auto& [id, site] : prof.sites) {
      if (site.kind == mpi::CollectiveKind::Allreduce) {
        saw_allreduce = true;
        EXPECT_EQ(n_invocations(site), 5u);
        EXPECT_EQ(n_distinct_stacks(site), 1u);
        EXPECT_DOUBLE_EQ(mean_stack_depth(site), 1.0);
        EXPECT_EQ(site.invocations.front().bytes, 32u);
      } else {
        saw_barrier = true;
        EXPECT_EQ(site.kind, mpi::CollectiveKind::Barrier);
        EXPECT_EQ(n_invocations(site), 1u);
      }
    }
    EXPECT_TRUE(saw_allreduce);
    EXPECT_TRUE(saw_barrier);
  }
}

TEST(Profiler, DistinctStacksSeparateRepresentatives) {
  trace::ContextRegistry contexts(2);
  Profiler profiler(contexts);
  mpi::World world(opts(2));
  world.set_tools(&profiler);
  world.run([&](mpi::Mpi& mpi) {
    auto& ctx = contexts.of(mpi.world_rank());
    mpi::RegisteredBuffer<double> buf(mpi.registry(), 1, 1.0);
    const auto call = [&] {
      // One call site (this lambda body), reached from two stacks.
      mpi.allreduce(buf.data(), buf.data(), 1, mpi::kDouble, mpi::kSum);
    };
    {
      trace::FunctionScope a(ctx, "path_a");
      call();
      call();
    }
    {
      trace::FunctionScope b(ctx, "path_b");
      call();
    }
  });
  const auto& prof = profiler.rank(0);
  ASSERT_EQ(prof.sites.size(), 1u);
  const auto& site = prof.sites.begin()->second;
  EXPECT_EQ(n_invocations(site), 3u);
  EXPECT_EQ(n_distinct_stacks(site), 2u);
  const auto reps = stack_representatives(site);
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(reps[0].invocation, 0u);
  EXPECT_EQ(reps[1].invocation, 2u);
}

TEST(Profiler, PhaseAndErrHalSnapshots) {
  trace::ContextRegistry contexts(2);
  Profiler profiler(contexts);
  mpi::World world(opts(2));
  world.set_tools(&profiler);
  world.run([&](mpi::Mpi& mpi) {
    auto& ctx = contexts.of(mpi.world_rank());
    mpi::RegisteredBuffer<double> buf(mpi.registry(), 1, 1.0);
    ctx.set_phase(trace::ExecPhase::Compute);
    mpi.allreduce(buf.data(), buf.data(), 1, mpi::kDouble, mpi::kSum);
    {
      trace::ErrorHandlingScope errhal(ctx);
      mpi.allreduce(buf.data(), buf.data(), 1, mpi::kDouble, mpi::kMax);
    }
  });
  const auto& prof = profiler.rank(1);
  ASSERT_EQ(prof.sites.size(), 2u);
  int errhal_count = 0;
  for (const auto& [id, site] : prof.sites) {
    EXPECT_EQ(site.invocations.front().phase, trace::ExecPhase::Compute);
    if (site.invocations.front().errhal) ++errhal_count;
  }
  EXPECT_EQ(errhal_count, 1);
}

TEST(Profiler, RootednessRecorded) {
  trace::ContextRegistry contexts(4);
  Profiler profiler(contexts);
  mpi::World world(opts(4));
  world.set_tools(&profiler);
  world.run([&](mpi::Mpi& mpi) {
    mpi::RegisteredBuffer<double> s(mpi.registry(), 1, 1.0);
    mpi::RegisteredBuffer<double> d(mpi.registry(), 1);
    mpi.reduce(s.data(), d.data(), 1, mpi::kDouble, mpi::kSum, 2);
  });
  for (int r = 0; r < 4; ++r) {
    const auto& site = profiler.rank(r).sites.begin()->second;
    EXPECT_EQ(site.is_root_here, r == 2);
    ASSERT_EQ(contexts.of(r).comm_trace().size(), 1u);
    EXPECT_EQ(contexts.of(r).comm_trace().events()[0].is_root, r == 2);
  }
}

TEST(Profiler, MpipReportListsSites) {
  trace::ContextRegistry contexts(2);
  Profiler profiler(contexts);
  mpi::World world(opts(2));
  world.set_tools(&profiler);
  world.run([&](mpi::Mpi& mpi) {
    mpi::RegisteredBuffer<double> buf(mpi.registry(), 2, 1.0);
    mpi.allreduce(buf.data(), buf.data(), 2, mpi::kDouble, mpi::kSum);
    mpi.barrier();
  });
  const auto report = mpip_report(profiler);
  EXPECT_NE(report.find("MPI_Allreduce"), std::string::npos);
  EXPECT_NE(report.find("MPI_Barrier"), std::string::npos);
  EXPECT_NE(report.find("test_profiler.cpp"), std::string::npos);
}

TEST(Profiler, ChainCombinesTools) {
  // Profiler + a mutating tool through HookChain: profiler sees the
  // pristine call because it is attached first.
  class CountCorruptor : public mpi::ToolHooks {
   public:
    void on_enter(mpi::CollectiveCall& call, mpi::Mpi&) override {
      observed_count.store(call.count);
      call.count = 0;  // neutralize the payload
    }
    void on_exit(const mpi::CollectiveCall&, mpi::Mpi&) override {}
    std::atomic<std::int32_t> observed_count{-1};
  };

  trace::ContextRegistry contexts(2);
  Profiler profiler(contexts);
  CountCorruptor corruptor;
  pmpi::HookChain chain;
  chain.add(&profiler);
  chain.add(&corruptor);

  mpi::World world(opts(2));
  world.set_tools(&chain);
  const auto result = world.run([&](mpi::Mpi& mpi) {
    mpi::RegisteredBuffer<double> buf(mpi.registry(), 4, 1.0);
    mpi.allreduce(buf.data(), buf.data(), 4, mpi::kDouble, mpi::kSum);
  });
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(corruptor.observed_count.load(), 4);
  // The profiler recorded the pristine 4-element payload.
  const auto& site = profiler.rank(0).sites.begin()->second;
  EXPECT_EQ(site.invocations.front().bytes, 32u);
}

}  // namespace
}  // namespace fastfit::profile

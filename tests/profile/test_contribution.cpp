// Byte attribution per collective kind (what mpiP would report), plus the
// comm-trace rendering used in reports.

#include <gtest/gtest.h>

#include "minimpi/datatype.hpp"
#include "profile/profiler.hpp"
#include "trace/comm_trace.hpp"

namespace fastfit::profile {
namespace {

mpi::CollectiveCall call_of(mpi::CollectiveKind kind, std::int32_t count,
                            mpi::Datatype dtype = mpi::kDouble) {
  mpi::CollectiveCall call;
  call.kind = kind;
  call.count = count;
  call.datatype = dtype;
  call.recvcount = count;
  call.recvdatatype = dtype;
  return call;
}

TEST(Contribution, ScalarKinds) {
  EXPECT_EQ(contribution_bytes(call_of(mpi::CollectiveKind::Barrier, 0), 8),
            0u);
  EXPECT_EQ(contribution_bytes(call_of(mpi::CollectiveKind::Bcast, 4), 8),
            32u);
  EXPECT_EQ(contribution_bytes(call_of(mpi::CollectiveKind::Reduce, 4), 8),
            32u);
  EXPECT_EQ(
      contribution_bytes(call_of(mpi::CollectiveKind::Allreduce, 4), 8),
      32u);
  EXPECT_EQ(contribution_bytes(call_of(mpi::CollectiveKind::Scan, 4), 8),
            32u);
}

TEST(Contribution, CommSizeScaledKinds) {
  EXPECT_EQ(contribution_bytes(call_of(mpi::CollectiveKind::Alltoall, 4), 8),
            4u * 8u * 8u);
  EXPECT_EQ(contribution_bytes(
                call_of(mpi::CollectiveKind::ReduceScatterBlock, 4), 8),
            4u * 8u * 8u);
  // Per-rank kinds do not scale.
  EXPECT_EQ(
      contribution_bytes(call_of(mpi::CollectiveKind::Allgather, 4), 8),
      32u);
  EXPECT_EQ(contribution_bytes(call_of(mpi::CollectiveKind::Gather, 4), 8),
            32u);
}

TEST(Contribution, VectorKindsSumTheArrays) {
  std::vector<std::int32_t> counts{1, 2, 3, 4};
  std::vector<std::int32_t> displs{0, 1, 3, 6};
  auto call = call_of(mpi::CollectiveKind::Alltoallv, 0, mpi::kInt32);
  call.sendcounts = &counts;
  call.sdispls = &displs;
  EXPECT_EQ(contribution_bytes(call, 4), 10u * 4u);

  auto scatterv = call_of(mpi::CollectiveKind::Scatterv, 0, mpi::kInt32);
  scatterv.sendcounts = &counts;
  scatterv.sdispls = &displs;
  EXPECT_EQ(contribution_bytes(scatterv, 4), 10u * 4u);
  // Non-root scatterv (no arrays): attributed by recv side.
  auto nonroot = call_of(mpi::CollectiveKind::Scatterv, 0, mpi::kInt32);
  nonroot.recvcount = 3;
  nonroot.recvdatatype = mpi::kInt32;
  EXPECT_EQ(contribution_bytes(nonroot, 4), 12u);
}

TEST(CommTraceRender, ListsEventsWithRoles) {
  trace::CommTrace comm_trace;
  comm_trace.record(
      trace::CommEvent{mpi::CollectiveKind::Reduce, 0xAB, 64, true});
  comm_trace.record(
      trace::CommEvent{mpi::CollectiveKind::Barrier, 0xCD, 0, false});
  const auto text = comm_trace.render();
  EXPECT_NE(text.find("MPI_Reduce"), std::string::npos);
  EXPECT_NE(text.find("(root)"), std::string::npos);
  EXPECT_NE(text.find("MPI_Barrier"), std::string::npos);
  EXPECT_EQ(comm_trace.size(), 2u);
}

TEST(CommTraceRender, FingerprintIgnoresBytesButNotRole) {
  trace::CommTrace a;
  trace::CommTrace b;
  trace::CommTrace c;
  a.record(trace::CommEvent{mpi::CollectiveKind::Gatherv, 1, 64, false});
  b.record(trace::CommEvent{mpi::CollectiveKind::Gatherv, 1, 128, false});
  c.record(trace::CommEvent{mpi::CollectiveKind::Gatherv, 1, 64, true});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());  // ragged payloads collapse
  EXPECT_NE(a.fingerprint(), c.fingerprint());  // role still distinguishes
}

}  // namespace
}  // namespace fastfit::profile

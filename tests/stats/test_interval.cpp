#include "stats/interval.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace fastfit::stats {
namespace {

TEST(Interval, WilsonCoversTheMle) {
  for (std::size_t errors : {0u, 3u, 50u, 97u, 100u}) {
    const auto ci = wilson_interval(errors, 100);
    const double p = errors / 100.0;
    EXPECT_TRUE(ci.contains(p)) << errors;
    EXPECT_GE(ci.lo, 0.0);
    EXPECT_LE(ci.hi, 1.0);
  }
}

TEST(Interval, WilsonNarrowsWithTrials) {
  const auto small = wilson_interval(3, 10);
  const auto medium = wilson_interval(30, 100);
  const auto large = wilson_interval(300, 1000);
  EXPECT_GT(small.width(), medium.width());
  EXPECT_GT(medium.width(), large.width());
}

TEST(Interval, WilsonAtHundredTrialsIsUsablyTight) {
  // The paper's "100 tests suffice" claim in numbers: at p=0.3 the 95%
  // interval spans roughly ±9 points — tight enough to separate the
  // paper's low/med/high levels.
  const auto ci = wilson_interval(30, 100);
  EXPECT_LT(ci.width(), 0.20);
  EXPECT_GT(ci.width(), 0.10);
}

TEST(Interval, WilsonBoundaryBehaviour) {
  const auto zero = wilson_interval(0, 20);
  EXPECT_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const auto one = wilson_interval(20, 20);
  EXPECT_EQ(one.hi, 1.0);
  EXPECT_LT(one.lo, 1.0);
}

TEST(Interval, WilsonRejectsBadInput) {
  EXPECT_THROW(wilson_interval(1, 0), InternalError);
  EXPECT_THROW(wilson_interval(5, 4), InternalError);
}

TEST(Interval, BootstrapCoversTrueMean) {
  RngStream data_rng(1, "boot-data");
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(5.0 + data_rng.normal());
  RngStream rng(2, "boot");
  const auto ci = bootstrap_mean_ci(xs, 0.95, 500, rng);
  EXPECT_TRUE(ci.contains(5.0));
  EXPECT_LT(ci.width(), 0.5);
}

TEST(Interval, BootstrapOnConstantSampleIsDegenerate) {
  RngStream rng(3, "boot");
  const auto ci = bootstrap_mean_ci({2.0, 2.0, 2.0, 2.0}, 0.95, 100, rng);
  EXPECT_DOUBLE_EQ(ci.lo, 2.0);
  EXPECT_DOUBLE_EQ(ci.hi, 2.0);
}

TEST(Interval, BootstrapRejectsBadInput) {
  RngStream rng(4, "boot");
  EXPECT_THROW(bootstrap_mean_ci({}, 0.95, 100, rng), InternalError);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 1.5, 100, rng), InternalError);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 0.95, 1, rng), InternalError);
}

TEST(Interval, BootstrapDeterministicPerStream) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
  RngStream r1(5, "boot");
  RngStream r2(5, "boot");
  const auto a = bootstrap_mean_ci(xs, 0.9, 200, r1);
  const auto b = bootstrap_mean_ci(xs, 0.9, 200, r2);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

}  // namespace
}  // namespace fastfit::stats

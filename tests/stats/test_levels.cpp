#include "stats/levels.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace fastfit::stats {
namespace {

TEST(Levels, EvenThresholds) {
  const auto t2 = even_thresholds(2);
  ASSERT_EQ(t2.size(), 1u);
  EXPECT_DOUBLE_EQ(t2[0], 0.5);
  const auto t4 = even_thresholds(4);
  ASSERT_EQ(t4.size(), 3u);
  EXPECT_DOUBLE_EQ(t4[0], 0.25);
  EXPECT_DOUBLE_EQ(t4[1], 0.5);
  EXPECT_DOUBLE_EQ(t4[2], 0.75);
  EXPECT_THROW(even_thresholds(1), InternalError);
}

TEST(Levels, FourLevelQuantizationMatchesPaperExample) {
  // Paper Sec III-C: Low 0-25%, Medium-low 25-50%, Medium-high 50-75%,
  // High 75-100%.
  const auto t = even_thresholds(4);
  EXPECT_EQ(level_of(0.0, t), 0u);
  EXPECT_EQ(level_of(0.24, t), 0u);
  EXPECT_EQ(level_of(0.25, t), 1u);
  EXPECT_EQ(level_of(0.49, t), 1u);
  EXPECT_EQ(level_of(0.5, t), 2u);
  EXPECT_EQ(level_of(0.75, t), 3u);
  EXPECT_EQ(level_of(1.0, t), 3u);
}

TEST(Levels, SkewedSchemeOfFigures8And11) {
  const auto t = skewed_low_med_high();
  EXPECT_EQ(level_of(0.10, t), 0u);  // low: < 15%
  EXPECT_EQ(level_of(0.15, t), 1u);  // med: 15-85%
  EXPECT_EQ(level_of(0.50, t), 1u);
  EXPECT_EQ(level_of(0.85, t), 2u);  // high: > 85%
  EXPECT_EQ(level_of(0.99, t), 2u);
}

TEST(Levels, EmptyThresholdsThrows) {
  EXPECT_THROW(level_of(0.5, {}), InternalError);
}

TEST(Levels, LevelNames) {
  EXPECT_EQ(level_names(2), (std::vector<std::string>{"low", "high"}));
  EXPECT_EQ(level_names(3), (std::vector<std::string>{"low", "med", "high"}));
  EXPECT_EQ(level_names(4)[1], "med-low");
  EXPECT_EQ(level_names(5)[4], "L4");
}

TEST(Levels, LevelIndexAlwaysWithinRange) {
  const auto t = even_thresholds(3);
  for (double r = -0.5; r <= 1.5; r += 0.01) {
    EXPECT_LT(level_of(r, t), 3u);
  }
}

}  // namespace
}  // namespace fastfit::stats

#include "stats/correlation.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace fastfit::stats {
namespace {

TEST(Correlation, PerfectPositive) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(eq1_correlation(x, y), 1.0, 1e-12);
}

TEST(Correlation, PerfectNegative) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
  EXPECT_NEAR(eq1_correlation(x, y), 0.0, 1e-12);
}

TEST(Correlation, IndependentNearHalf) {
  fastfit::RngStream rng(4, "corr");
  std::vector<double> x, y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.uniform());
    y.push_back(rng.uniform());
  }
  // Paper: Eq-1 value of 0.5 means "feature does not affect sensitivity".
  EXPECT_NEAR(eq1_correlation(x, y), 0.5, 0.02);
}

TEST(Correlation, ConstantSeriesReportsNoSignal) {
  const std::vector<double> x{3, 3, 3, 3};
  const std::vector<double> y{1, 2, 3, 4};
  EXPECT_EQ(pearson(x, y), 0.0);
  EXPECT_EQ(eq1_correlation(x, y), 0.5);
}

TEST(Correlation, Eq1AlwaysInUnitInterval) {
  fastfit::RngStream rng(5, "bounds");
  for (int rep = 0; rep < 100; ++rep) {
    std::vector<double> x, y;
    for (int i = 0; i < 30; ++i) {
      x.push_back(rng.normal());
      y.push_back(rng.normal() + 0.5 * x.back());
    }
    const double c = eq1_correlation(x, y);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(Correlation, Symmetric) {
  const std::vector<double> x{1, 5, 2, 8, 3};
  const std::vector<double> y{2, 3, 9, 1, 4};
  EXPECT_DOUBLE_EQ(pearson(x, y), pearson(y, x));
}

TEST(Correlation, InvariantUnderAffineTransform) {
  const std::vector<double> x{1, 5, 2, 8, 3};
  const std::vector<double> y{2, 3, 9, 1, 4};
  std::vector<double> x2;
  for (double v : x) x2.push_back(3.0 * v + 7.0);
  EXPECT_NEAR(pearson(x, y), pearson(x2, y), 1e-12);
}

TEST(Correlation, ErrorsOnBadInput) {
  EXPECT_THROW(pearson({1, 2}, {1}), InternalError);
  EXPECT_THROW(pearson({}, {}), InternalError);
}

}  // namespace
}  // namespace fastfit::stats

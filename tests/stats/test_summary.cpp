#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace fastfit::stats {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, KnownMoments) {
  const auto s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, SampleVarianceUsesNMinusOne) {
  const auto s = summarize({1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
}

TEST(Summary, SingleObservationSampleVarianceZero) {
  const auto s = summarize({5.0});
  EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);
}

TEST(Summary, MergeMatchesSinglePass) {
  fastfit::RngStream rng(123, "merge");
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.normal() * 3 + 7);
  Summary whole = summarize(xs);
  Summary left, right;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 400 ? left : right).add(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Summary, MergeWithEmptyIsIdentity) {
  Summary a = summarize({1.0, 2.0, 3.0});
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 3u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Summary, NumericallyStableAroundLargeOffset) {
  Summary s;
  const double offset = 1e12;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2 ? 1.0 : -1.0));
  EXPECT_NEAR(s.mean(), offset, 1e-2);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

}  // namespace
}  // namespace fastfit::stats

#include "stats/confusion.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace fastfit::stats {
namespace {

TEST(Confusion, EmptyMatrix) {
  ConfusionMatrix m(3);
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.accuracy(), 0.0);
  EXPECT_EQ(m.recall(0), 0.0);
  EXPECT_EQ(m.precision(0), 0.0);
  EXPECT_EQ(m.majority_baseline(), 0.0);
}

TEST(Confusion, PerfectPredictor) {
  ConfusionMatrix m(2);
  for (int i = 0; i < 10; ++i) m.add(i % 2, i % 2);
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(m.recall(0), 1.0);
  EXPECT_DOUBLE_EQ(m.recall(1), 1.0);
  EXPECT_DOUBLE_EQ(m.precision(0), 1.0);
}

TEST(Confusion, KnownMixedCase) {
  ConfusionMatrix m(2);
  // actual 0: 3 correct, 1 wrong; actual 1: 2 correct, 2 wrong.
  m.add(0, 0); m.add(0, 0); m.add(0, 0); m.add(0, 1);
  m.add(1, 1); m.add(1, 1); m.add(1, 0); m.add(1, 0);
  EXPECT_DOUBLE_EQ(m.accuracy(), 5.0 / 8.0);
  EXPECT_DOUBLE_EQ(m.recall(0), 0.75);
  EXPECT_DOUBLE_EQ(m.recall(1), 0.5);
  EXPECT_DOUBLE_EQ(m.precision(0), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(m.precision(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.support(0), 4u);
  EXPECT_DOUBLE_EQ(m.majority_baseline(), 0.5);
}

TEST(Confusion, MajorityBaselineSkewed) {
  ConfusionMatrix m(3);
  for (int i = 0; i < 9; ++i) m.add(0, 1);
  m.add(2, 2);
  EXPECT_DOUBLE_EQ(m.majority_baseline(), 0.9);
}

TEST(Confusion, OutOfRangeThrows) {
  ConfusionMatrix m(2);
  EXPECT_THROW(m.add(2, 0), InternalError);
  EXPECT_THROW(m.add(0, 2), InternalError);
  EXPECT_THROW(m.count(0, 5), InternalError);
  EXPECT_THROW(ConfusionMatrix(0), InternalError);
}

TEST(Confusion, RenderContainsNamesAndAccuracy) {
  ConfusionMatrix m(2);
  m.add(0, 0);
  m.add(1, 0);
  const auto text = m.render({"SUCCESS", "SEG_FAULT"});
  EXPECT_NE(text.find("SUCCESS"), std::string::npos);
  EXPECT_NE(text.find("SEG_FAULT"), std::string::npos);
  EXPECT_NE(text.find("overall accuracy"), std::string::npos);
  EXPECT_THROW(m.render({"one"}), InternalError);
}

}  // namespace
}  // namespace fastfit::stats

#include "stats/gaussian.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace fastfit::stats {
namespace {

TEST(Gaussian, FitRecoversParameters) {
  fastfit::RngStream rng(77, "gauss");
  std::vector<double> xs;
  // The paper's Fig 3 example: error rates ~ N(29.58, 7.69).
  for (int i = 0; i < 20000; ++i) xs.push_back(29.58 + 7.69 * rng.normal());
  const auto fit = fit_gaussian(xs);
  EXPECT_NEAR(fit.mean, 29.58, 0.3);
  EXPECT_NEAR(fit.stddev, 7.69, 0.3);
}

TEST(Gaussian, FitNeedsTwoObservations) {
  EXPECT_THROW(fit_gaussian({}), InternalError);
  EXPECT_THROW(fit_gaussian({1.0}), InternalError);
}

TEST(Gaussian, PdfPeaksAtMean) {
  const GaussianFit fit{10.0, 2.0};
  EXPECT_GT(fit.pdf(10.0), fit.pdf(8.0));
  EXPECT_GT(fit.pdf(10.0), fit.pdf(12.0));
  EXPECT_NEAR(fit.pdf(8.0), fit.pdf(12.0), 1e-12);  // symmetry
}

TEST(Gaussian, CdfMonotoneWithKnownAnchors) {
  const GaussianFit fit{0.0, 1.0};
  EXPECT_NEAR(fit.cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(fit.cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(fit.cdf(-1.96), 0.025, 1e-3);
  EXPECT_LT(fit.cdf(-1.0), fit.cdf(1.0));
}

TEST(Gaussian, DegenerateStddevIsStepFunction) {
  const GaussianFit fit{5.0, 0.0};
  EXPECT_EQ(fit.cdf(4.999), 0.0);
  EXPECT_EQ(fit.cdf(5.0), 1.0);
}

TEST(Gaussian, ChiSquaredSmallForGaussianData) {
  fastfit::RngStream rng(9, "gof");
  std::vector<double> xs;
  Histogram hist(0.0, 60.0, 12);
  for (int i = 0; i < 5000; ++i) {
    const double x = 30.0 + 5.0 * rng.normal();
    xs.push_back(x);
    hist.add(x);
  }
  const auto fit = fit_gaussian(xs);
  const auto gof = chi_squared_gof(hist, fit);
  ASSERT_GT(gof.degrees_of_freedom, 0u);
  // For a true Gaussian the statistic should be near its dof; allow slack.
  EXPECT_LT(gof.statistic,
            3.0 * static_cast<double>(gof.degrees_of_freedom) + 10.0);
}

TEST(Gaussian, ChiSquaredLargeForBimodalData) {
  fastfit::RngStream rng(10, "gof2");
  std::vector<double> xs;
  Histogram hist(0.0, 60.0, 12);
  for (int i = 0; i < 5000; ++i) {
    const double x = (i % 2 ? 10.0 : 50.0) + rng.normal();
    xs.push_back(x);
    hist.add(x);
  }
  const auto fit = fit_gaussian(xs);
  const auto gof = chi_squared_gof(hist, fit);
  EXPECT_GT(gof.statistic,
            10.0 * static_cast<double>(gof.degrees_of_freedom + 1));
}

}  // namespace
}  // namespace fastfit::stats

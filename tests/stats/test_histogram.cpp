#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "support/error.hpp"

namespace fastfit::stats {
namespace {

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 100.0, 20);
  EXPECT_EQ(h.bins(), 20u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(19), 95.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(19), 100.0);
}

TEST(Histogram, CountsLandInCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);
  h.add(0.99);
  h.add(5.0);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(15.0);
  h.add(10.0);  // hi itself clamps into the last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, NonFiniteObservationsClampSafely) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0), 2u);  // NaN and -inf
  EXPECT_EQ(h.count(9), 1u);  // +inf
}

TEST(Histogram, ModeBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(2.5);
  h.add(2.6);
  h.add(0.5);
  EXPECT_EQ(h.mode_bin(), 2u);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InternalError);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InternalError);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), InternalError);
}

TEST(Histogram, CountOutOfRangeThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.count(2), InternalError);
  EXPECT_THROW(h.bin_lo(2), InternalError);
}

TEST(Histogram, RenderMentionsLabelAndTotal) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.2);
  const auto text = h.render("error rate");
  EXPECT_NE(text.find("error rate"), std::string::npos);
  EXPECT_NE(text.find("1 observations"), std::string::npos);
}

}  // namespace
}  // namespace fastfit::stats

#include "support/bitops.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "support/error.hpp"

namespace fastfit {
namespace {

std::span<std::byte> as_span(std::array<std::byte, 4>& a) {
  return std::span<std::byte>(a.data(), a.size());
}

TEST(Bitops, FlipChangesExactlyOneBit) {
  std::array<std::byte, 4> buf{};
  const auto before = buf;
  flip_bit(as_span(buf), 13);
  EXPECT_EQ(hamming_distance(std::span<const std::byte>(before),
                             std::span<const std::byte>(buf)),
            1u);
}

TEST(Bitops, FlipIsInvolution) {
  std::array<std::byte, 4> buf{std::byte{0xDE}, std::byte{0xAD},
                               std::byte{0xBE}, std::byte{0xEF}};
  const auto before = buf;
  for (std::size_t bit = 0; bit < 32; ++bit) {
    flip_bit(as_span(buf), bit);
    flip_bit(as_span(buf), bit);
    EXPECT_EQ(buf, before) << "bit " << bit;
  }
}

TEST(Bitops, FlipOutOfRangeThrows) {
  std::array<std::byte, 4> buf{};
  EXPECT_THROW(flip_bit(as_span(buf), 32), InternalError);
}

TEST(Bitops, BitWidth) {
  std::array<std::byte, 4> buf{};
  EXPECT_EQ(bit_width_of(std::span<const std::byte>(buf)), 32u);
}

TEST(Bitops, WithFlippedBitScalar) {
  const std::uint32_t x = 0;
  EXPECT_EQ(with_flipped_bit(x, 0), 1u);
  EXPECT_EQ(with_flipped_bit(x, 31), 0x80000000u);
  EXPECT_EQ(with_flipped_bit(with_flipped_bit(x, 17), 17), x);
}

TEST(Bitops, WithFlippedBitSignBitOfInt32MakesNegative) {
  const std::int32_t count = 1024;
  EXPECT_LT(with_flipped_bit(count, 31), 0);
}

TEST(Bitops, WithFlippedBitHighBitOfCountMakesHuge) {
  const std::int32_t count = 8;
  EXPECT_GT(with_flipped_bit(count, 30), 1 << 29);
}

TEST(Bitops, PopcountCountsSetBits) {
  std::array<std::byte, 2> buf{std::byte{0xF0}, std::byte{0x01}};
  EXPECT_EQ(popcount(std::span<const std::byte>(buf)), 5u);
}

TEST(Bitops, HammingDistanceSizeMismatchThrows) {
  std::array<std::byte, 2> a{};
  std::array<std::byte, 3> b{};
  EXPECT_THROW(hamming_distance(std::span<const std::byte>(a),
                                std::span<const std::byte>(b)),
               InternalError);
}

TEST(Bitops, DoubleBitFlipPerturbsValue) {
  const double x = 3.14159;
  int changed = 0;
  for (std::size_t bit = 0; bit < 64; ++bit) {
    if (with_flipped_bit(x, bit) != x) ++changed;
  }
  // Every bit flip of a finite non-zero double changes its value (some
  // produce NaN, which compares unequal as desired).
  EXPECT_EQ(changed, 64);
}

}  // namespace
}  // namespace fastfit

#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "support/error.hpp"

namespace fastfit {
namespace {

TEST(Rng, SameSeedNameIndexReproduces) {
  RngStream a(42, "trial", 7);
  RngStream b(42, "trial", 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_u64(0, 1'000'000), b.uniform_u64(0, 1'000'000));
  }
}

TEST(Rng, DifferentNamesDiverge) {
  RngStream a(42, "trial", 0);
  RngStream b(42, "verify", 0);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.uniform_u64(0, 1ULL << 62) == b.uniform_u64(0, 1ULL << 62)) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, DifferentIndicesDiverge) {
  RngStream a(42, "trial", 0);
  RngStream b(42, "trial", 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.uniform_u64(0, 1ULL << 62) == b.uniform_u64(0, 1ULL << 62)) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformBoundsInclusive) {
  RngStream rng(1, "bounds");
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_u64(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformLoGreaterThanHiThrows) {
  RngStream rng(1, "bad");
  EXPECT_THROW(rng.uniform_u64(5, 3), InternalError);
}

TEST(Rng, IndexCoversRange) {
  RngStream rng(9, "index");
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.index(0), InternalError);
}

TEST(Rng, UniformDoubleInHalfOpenUnit) {
  RngStream rng(3, "unit");
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliRespectsProbabilityRoughly) {
  RngStream rng(5, "coin");
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(Rng, NormalHasUnitishMoments) {
  RngStream rng(7, "normal");
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.08);
}

TEST(Rng, ShuffleIsPermutation) {
  RngStream rng(11, "shuffle");
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  RngStream rng(13, "sample");
  for (int rep = 0; rep < 50; ++rep) {
    auto s = rng.sample_without_replacement(20, 8);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 8u);
    for (auto i : s) EXPECT_LT(i, 20u);
  }
}

TEST(Rng, SampleKEqualsNIsFullSet) {
  RngStream rng(13, "sample");
  auto s = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, SampleKGreaterThanNThrows) {
  RngStream rng(13, "sample");
  EXPECT_THROW(rng.sample_without_replacement(3, 4), InternalError);
}

TEST(Rng, Fnv1aStableAndDistinct) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

}  // namespace
}  // namespace fastfit

#include "support/format.hpp"

#include <gtest/gtest.h>

namespace fastfit {
namespace {

TEST(Format, Join) {
  EXPECT_EQ(join(std::vector<int>{1, 2, 3}, ", "), "1, 2, 3");
  EXPECT_EQ(join(std::vector<int>{}, ", "), "");
  EXPECT_EQ(join(std::vector<std::string>{"a"}, "|"), "a");
}

TEST(Format, Percent) {
  EXPECT_EQ(percent(0.9724), "97.24%");
  EXPECT_EQ(percent(0.5, 0), "50%");
  EXPECT_EQ(percent(1.0), "100.00%");
  EXPECT_EQ(percent(0.0), "0.00%");
}

TEST(Format, Pad) {
  EXPECT_EQ(pad("ab", 5), "ab   ");
  EXPECT_EQ(pad("abcdef", 3), "abcdef");
}

TEST(Format, AsciiBarProportionalAndClamped) {
  EXPECT_EQ(ascii_bar(0.0, 10), "");
  EXPECT_EQ(ascii_bar(1.0, 10).size(), 10u);
  EXPECT_EQ(ascii_bar(0.5, 10).size(), 5u);
  EXPECT_EQ(ascii_bar(2.0, 10).size(), 10u);   // clamped
  EXPECT_EQ(ascii_bar(-1.0, 10).size(), 0u);   // clamped
}

}  // namespace
}  // namespace fastfit

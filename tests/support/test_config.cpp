#include "support/config.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "support/error.hpp"

namespace fastfit {
namespace {

TEST(Config, Defaults) {
  const auto cfg = InjectionConfig::from_map({});
  EXPECT_EQ(cfg.num_inj, 100u);
  EXPECT_FALSE(cfg.inv_id.has_value());
  EXPECT_FALSE(cfg.call_id.has_value());
  EXPECT_FALSE(cfg.rank_id.has_value());
  EXPECT_FALSE(cfg.param_id.has_value());
}

TEST(Config, ParsesAllTableTwoVariables) {
  const auto cfg = InjectionConfig::from_map({{"NUM_INJ", "250"},
                                              {"INV_ID", "17"},
                                              {"CALL_ID", "3"},
                                              {"RANK_ID", "31"},
                                              {"PARAM_ID", "4"},
                                              {"FASTFIT_SEED", "99"}});
  EXPECT_EQ(cfg.num_inj, 250u);
  EXPECT_EQ(cfg.inv_id, 17u);
  EXPECT_EQ(cfg.call_id, 3u);
  EXPECT_EQ(cfg.rank_id, 31u);
  EXPECT_EQ(cfg.param_id, 4);
  EXPECT_EQ(cfg.seed, 99u);
}

TEST(Config, RejectsUnknownKey) {
  EXPECT_THROW(InjectionConfig::from_map({{"BOGUS", "1"}}), ConfigError);
}

TEST(Config, RejectsNonNumeric) {
  EXPECT_THROW(InjectionConfig::from_map({{"NUM_INJ", "ten"}}), ConfigError);
  EXPECT_THROW(InjectionConfig::from_map({{"NUM_INJ", ""}}), ConfigError);
  EXPECT_THROW(InjectionConfig::from_map({{"NUM_INJ", "-5"}}), ConfigError);
}

TEST(Config, RejectsZeroTrials) {
  EXPECT_THROW(InjectionConfig::from_map({{"NUM_INJ", "0"}}), ConfigError);
}

TEST(Config, EnforcesTableTwoFieldWidths) {
  // The paper allots 3 decimal digits to INV_ID / CALL_ID and 1 to PARAM_ID.
  EXPECT_NO_THROW(InjectionConfig::from_map({{"INV_ID", "999"}}));
  EXPECT_THROW(InjectionConfig::from_map({{"INV_ID", "1000"}}), ConfigError);
  EXPECT_THROW(InjectionConfig::from_map({{"CALL_ID", "1000"}}), ConfigError);
  EXPECT_NO_THROW(InjectionConfig::from_map({{"PARAM_ID", "9"}}));
  EXPECT_THROW(InjectionConfig::from_map({{"PARAM_ID", "10"}}), ConfigError);
}

TEST(Config, RejectsOverflow) {
  EXPECT_THROW(InjectionConfig::from_map({{"NUM_INJ", "99999999999999999999"}}),
               ConfigError);
}

TEST(Config, RoundTripsThroughMap) {
  auto cfg = InjectionConfig::from_map(
      {{"NUM_INJ", "50"}, {"CALL_ID", "7"}, {"PARAM_ID", "2"}});
  const auto cfg2 = InjectionConfig::from_map(cfg.to_map());
  EXPECT_EQ(cfg2.num_inj, 50u);
  EXPECT_EQ(cfg2.call_id, 7u);
  EXPECT_EQ(cfg2.param_id, 2);
  EXPECT_FALSE(cfg2.inv_id.has_value());
}

TEST(Config, ParallelTrialsDefaultsToAuto) {
  const auto cfg = InjectionConfig::from_map({});
  EXPECT_EQ(cfg.parallel_trials, 0u);  // 0 = auto-sized pool
}

TEST(Config, ParsesAndValidatesParallelTrials) {
  const auto cfg =
      InjectionConfig::from_map({{"FASTFIT_PARALLEL_TRIALS", "4"}});
  EXPECT_EQ(cfg.parallel_trials, 4u);
  EXPECT_THROW(InjectionConfig::from_map({{"FASTFIT_PARALLEL_TRIALS", "-1"}}),
               ConfigError);
  EXPECT_THROW(InjectionConfig::from_map({{"FASTFIT_PARALLEL_TRIALS", "two"}}),
               ConfigError);
  EXPECT_THROW(
      InjectionConfig::from_map({{"FASTFIT_PARALLEL_TRIALS", "5000"}}),
      ConfigError);
}

TEST(Config, ParallelTrialsRoundTripsThroughMap) {
  auto cfg = InjectionConfig::from_map({{"FASTFIT_PARALLEL_TRIALS", "8"}});
  const auto cfg2 = InjectionConfig::from_map(cfg.to_map());
  EXPECT_EQ(cfg2.parallel_trials, 8u);
  // The auto default is not emitted, keeping Table II maps minimal.
  EXPECT_EQ(InjectionConfig{}.to_map().count("FASTFIT_PARALLEL_TRIALS"), 0u);
}

TEST(Config, ResilienceKnobDefaults) {
  const auto cfg = InjectionConfig::from_map({});
  EXPECT_TRUE(cfg.journal.empty());       // no journal unless asked for
  EXPECT_EQ(cfg.max_trial_retries, 2u);
  EXPECT_EQ(cfg.watchdog_escalation, 4u);
}

TEST(Config, ParsesJournalPath) {
  const auto cfg =
      InjectionConfig::from_map({{"FASTFIT_JOURNAL", "/tmp/run.jsonl"}});
  EXPECT_EQ(cfg.journal, "/tmp/run.jsonl");
  EXPECT_THROW(InjectionConfig::from_map({{"FASTFIT_JOURNAL", ""}}),
               ConfigError);
}

TEST(Config, ParsesAndValidatesMaxTrialRetries) {
  const auto cfg =
      InjectionConfig::from_map({{"FASTFIT_MAX_TRIAL_RETRIES", "0"}});
  EXPECT_EQ(cfg.max_trial_retries, 0u);  // 0 = quarantine on first failure
  EXPECT_EQ(InjectionConfig::from_map({{"FASTFIT_MAX_TRIAL_RETRIES", "100"}})
                .max_trial_retries,
            100u);
  EXPECT_THROW(
      InjectionConfig::from_map({{"FASTFIT_MAX_TRIAL_RETRIES", "101"}}),
      ConfigError);
  EXPECT_THROW(
      InjectionConfig::from_map({{"FASTFIT_MAX_TRIAL_RETRIES", "many"}}),
      ConfigError);
}

TEST(Config, ParsesAndValidatesWatchdogEscalation) {
  const auto cfg =
      InjectionConfig::from_map({{"FASTFIT_WATCHDOG_ESCALATION", "8"}});
  EXPECT_EQ(cfg.watchdog_escalation, 8u);
  // x1 (no escalation) is allowed; x0 would disable the watchdog entirely.
  EXPECT_EQ(InjectionConfig::from_map({{"FASTFIT_WATCHDOG_ESCALATION", "1"}})
                .watchdog_escalation,
            1u);
  EXPECT_THROW(
      InjectionConfig::from_map({{"FASTFIT_WATCHDOG_ESCALATION", "0"}}),
      ConfigError);
  EXPECT_THROW(
      InjectionConfig::from_map({{"FASTFIT_WATCHDOG_ESCALATION", "65"}}),
      ConfigError);
}

TEST(Config, ResilienceKnobsRoundTripThroughMap) {
  auto cfg = InjectionConfig::from_map({{"FASTFIT_JOURNAL", "j.jsonl"},
                                        {"FASTFIT_MAX_TRIAL_RETRIES", "5"},
                                        {"FASTFIT_WATCHDOG_ESCALATION", "2"}});
  const auto cfg2 = InjectionConfig::from_map(cfg.to_map());
  EXPECT_EQ(cfg2.journal, "j.jsonl");
  EXPECT_EQ(cfg2.max_trial_retries, 5u);
  EXPECT_EQ(cfg2.watchdog_escalation, 2u);
  // Defaults are not emitted, matching the FASTFIT_PARALLEL_TRIALS pattern.
  const auto defaults = InjectionConfig{}.to_map();
  EXPECT_EQ(defaults.count("FASTFIT_JOURNAL"), 0u);
  EXPECT_EQ(defaults.count("FASTFIT_MAX_TRIAL_RETRIES"), 0u);
  EXPECT_EQ(defaults.count("FASTFIT_WATCHDOG_ESCALATION"), 0u);
}

TEST(Config, ResilienceKnobsReadFromEnvironment) {
  ::setenv("FASTFIT_JOURNAL", "/tmp/env.jsonl", 1);
  ::setenv("FASTFIT_MAX_TRIAL_RETRIES", "7", 1);
  ::setenv("FASTFIT_WATCHDOG_ESCALATION", "3", 1);
  const auto cfg = InjectionConfig::from_environment();
  EXPECT_EQ(cfg.journal, "/tmp/env.jsonl");
  EXPECT_EQ(cfg.max_trial_retries, 7u);
  EXPECT_EQ(cfg.watchdog_escalation, 3u);
  ::unsetenv("FASTFIT_JOURNAL");
  ::unsetenv("FASTFIT_MAX_TRIAL_RETRIES");
  ::unsetenv("FASTFIT_WATCHDOG_ESCALATION");
}

TEST(Config, HangDetectionKnobDefaultsOnAndParses) {
  EXPECT_TRUE(InjectionConfig::from_map({}).hang_detection);
  EXPECT_FALSE(InjectionConfig::from_map({{"FASTFIT_HANG_DETECTION", "0"}})
                   .hang_detection);
  EXPECT_TRUE(InjectionConfig::from_map({{"FASTFIT_HANG_DETECTION", "1"}})
                  .hang_detection);
  EXPECT_THROW(InjectionConfig::from_map({{"FASTFIT_HANG_DETECTION", "2"}}),
               ConfigError);
  EXPECT_THROW(InjectionConfig::from_map({{"FASTFIT_HANG_DETECTION", "on"}}),
               ConfigError);
}

TEST(Config, ParsesAndValidatesMaxLeakedThreads) {
  EXPECT_EQ(InjectionConfig::from_map({}).max_leaked_threads, 8u);
  EXPECT_EQ(InjectionConfig::from_map({{"FASTFIT_MAX_LEAKED_THREADS", "0"}})
                .max_leaked_threads,
            0u);  // 0 = fail on the first leak
  EXPECT_THROW(
      InjectionConfig::from_map({{"FASTFIT_MAX_LEAKED_THREADS", "4097"}}),
      ConfigError);
}

TEST(Config, TeardownKnobsRoundTripThroughMap) {
  auto cfg = InjectionConfig::from_map({{"FASTFIT_HANG_DETECTION", "0"},
                                        {"FASTFIT_MAX_LEAKED_THREADS", "2"}});
  const auto cfg2 = InjectionConfig::from_map(cfg.to_map());
  EXPECT_FALSE(cfg2.hang_detection);
  EXPECT_EQ(cfg2.max_leaked_threads, 2u);
  const auto defaults = InjectionConfig{}.to_map();
  EXPECT_EQ(defaults.count("FASTFIT_HANG_DETECTION"), 0u);
  EXPECT_EQ(defaults.count("FASTFIT_MAX_LEAKED_THREADS"), 0u);
}

TEST(Config, TeardownKnobsReadFromEnvironment) {
  ::setenv("FASTFIT_HANG_DETECTION", "0", 1);
  ::setenv("FASTFIT_MAX_LEAKED_THREADS", "3", 1);
  const auto cfg = InjectionConfig::from_environment();
  EXPECT_FALSE(cfg.hang_detection);
  EXPECT_EQ(cfg.max_leaked_threads, 3u);
  ::unsetenv("FASTFIT_HANG_DETECTION");
  ::unsetenv("FASTFIT_MAX_LEAKED_THREADS");
}

TEST(Config, TelemetryKnobDefaultsAreOff) {
  const auto cfg = InjectionConfig::from_map({});
  EXPECT_TRUE(cfg.trace_out.empty());
  EXPECT_TRUE(cfg.metrics_out.empty());
  EXPECT_FALSE(cfg.progress);
  EXPECT_EQ(cfg.metrics_interval_ms, 0u);
  EXPECT_FALSE(cfg.telemetry_requested());
}

TEST(Config, ParsesTelemetryPathsAndRejectsEmpty) {
  const auto cfg =
      InjectionConfig::from_map({{"FASTFIT_TRACE", "trace.json"},
                                 {"FASTFIT_METRICS", "metrics.prom"}});
  EXPECT_EQ(cfg.trace_out, "trace.json");
  EXPECT_EQ(cfg.metrics_out, "metrics.prom");
  EXPECT_TRUE(cfg.telemetry_requested());
  EXPECT_THROW(InjectionConfig::from_map({{"FASTFIT_TRACE", ""}}),
               ConfigError);
  EXPECT_THROW(InjectionConfig::from_map({{"FASTFIT_METRICS", ""}}),
               ConfigError);
}

TEST(Config, ParsesAndValidatesProgressFlag) {
  EXPECT_TRUE(InjectionConfig::from_map({{"FASTFIT_PROGRESS", "1"}}).progress);
  EXPECT_FALSE(
      InjectionConfig::from_map({{"FASTFIT_PROGRESS", "0"}}).progress);
  EXPECT_TRUE(InjectionConfig::from_map({{"FASTFIT_PROGRESS", "1"}})
                  .telemetry_requested());
  EXPECT_THROW(InjectionConfig::from_map({{"FASTFIT_PROGRESS", "2"}}),
               ConfigError);
  EXPECT_THROW(InjectionConfig::from_map({{"FASTFIT_PROGRESS", "yes"}}),
               ConfigError);
}

TEST(Config, ParsesAndValidatesMetricsInterval) {
  EXPECT_EQ(InjectionConfig::from_map({{"FASTFIT_METRICS_INTERVAL_MS", "500"}})
                .metrics_interval_ms,
            500u);
  // Beyond one hour means "at campaign end", which 0 already requests.
  EXPECT_THROW(
      InjectionConfig::from_map({{"FASTFIT_METRICS_INTERVAL_MS", "3600001"}}),
      ConfigError);
}

TEST(Config, TelemetryKnobsRoundTripThroughMap) {
  auto cfg = InjectionConfig::from_map(
      {{"FASTFIT_TRACE", "t.json"},
       {"FASTFIT_METRICS", "m.prom"},
       {"FASTFIT_PROGRESS", "1"},
       {"FASTFIT_METRICS_INTERVAL_MS", "250"}});
  const auto cfg2 = InjectionConfig::from_map(cfg.to_map());
  EXPECT_EQ(cfg2.trace_out, "t.json");
  EXPECT_EQ(cfg2.metrics_out, "m.prom");
  EXPECT_TRUE(cfg2.progress);
  EXPECT_EQ(cfg2.metrics_interval_ms, 250u);
  const auto defaults = InjectionConfig{}.to_map();
  EXPECT_EQ(defaults.count("FASTFIT_TRACE"), 0u);
  EXPECT_EQ(defaults.count("FASTFIT_METRICS"), 0u);
  EXPECT_EQ(defaults.count("FASTFIT_PROGRESS"), 0u);
  EXPECT_EQ(defaults.count("FASTFIT_METRICS_INTERVAL_MS"), 0u);
}

TEST(Config, TelemetryKnobsReadFromEnvironment) {
  ::setenv("FASTFIT_TRACE", "/tmp/env-trace.json", 1);
  ::setenv("FASTFIT_PROGRESS", "1", 1);
  ::setenv("FASTFIT_METRICS_INTERVAL_MS", "100", 1);
  const auto cfg = InjectionConfig::from_environment();
  EXPECT_EQ(cfg.trace_out, "/tmp/env-trace.json");
  EXPECT_TRUE(cfg.progress);
  EXPECT_EQ(cfg.metrics_interval_ms, 100u);
  ::unsetenv("FASTFIT_TRACE");
  ::unsetenv("FASTFIT_PROGRESS");
  ::unsetenv("FASTFIT_METRICS_INTERVAL_MS");
}

TEST(Config, FromEnvironmentReadsTableTwoNames) {
  ::setenv("NUM_INJ", "33", 1);
  ::setenv("RANK_ID", "5", 1);
  const auto cfg = InjectionConfig::from_environment();
  EXPECT_EQ(cfg.num_inj, 33u);
  EXPECT_EQ(cfg.rank_id, 5u);
  ::unsetenv("NUM_INJ");
  ::unsetenv("RANK_ID");
}

TEST(Config, KnobTableIsCompleteAndConsistent) {
  // Every knob the table advertises must be a key from_map accepts: the
  // table drives both from_environment() and the CLI's --help, so an
  // entry from_map rejects would be a documented lie.
  const std::map<std::string, std::string> sample_values = {
      {"NUM_INJ", "10"},
      {"INV_ID", "1"},
      {"CALL_ID", "1"},
      {"RANK_ID", "1"},
      {"PARAM_ID", "1"},
      {"FASTFIT_SEED", "1"},
      {"FASTFIT_PARALLEL_TRIALS", "1"},
      {"FASTFIT_JOURNAL", "j.jsonl"},
      {"FASTFIT_MAX_TRIAL_RETRIES", "1"},
      {"FASTFIT_WATCHDOG_ESCALATION", "1"},
      {"FASTFIT_HANG_DETECTION", "1"},
      {"FASTFIT_MAX_LEAKED_THREADS", "1"},
      {"FASTFIT_SHARD", "1/2"},
      {"FASTFIT_PASSES", "semantic,context"},
      {"FASTFIT_TRACE", "t.json"},
      {"FASTFIT_METRICS", "m.prom"},
      {"FASTFIT_PROGRESS", "1"},
      {"FASTFIT_METRICS_INTERVAL_MS", "100"},
      {"FASTFIT_SNAPSHOTS", "auto"},
      {"FASTFIT_SNAPSHOT_CACHE_MB", "64"},
      {"FASTFIT_SNAPSHOT_RECORDING", "lu.recording"},
      {"FASTFIT_FAULT_MODELS", "single-bit-flip,rank-death"},
      {"FASTFIT_REPAIR", "1"},
      {"FASTFIT_ISOLATION", "process"},
      {"FASTFIT_WORLD_ENGINE", "threads"},
  };
  std::set<std::string> envs;
  std::set<std::string> flags;
  for (const auto& knob : config_knobs()) {
    EXPECT_TRUE(envs.insert(knob.env).second)
        << "duplicate env " << knob.env;
    if (knob.flag[0] != '\0') {
      EXPECT_TRUE(flags.insert(knob.flag).second)
          << "duplicate flag " << knob.flag;
    }
    EXPECT_NE(knob.help[0], '\0') << knob.env << " has no help text";
    const auto sample = sample_values.find(knob.env);
    ASSERT_NE(sample, sample_values.end())
        << "knob " << knob.env << " missing from this test's sample table "
        << "(new knob? add a sample value here)";
    EXPECT_NO_THROW(InjectionConfig::from_map({*sample})) << knob.env;
  }
  // And the reverse: every key from_map accepts is in the table.
  for (const auto& [env, value] : sample_values) {
    EXPECT_TRUE(envs.count(env)) << env << " accepted but not in the table";
  }
}

TEST(Config, IsolationKnobValidates) {
  const auto cfg =
      InjectionConfig::from_map({{"FASTFIT_ISOLATION", "process"}});
  EXPECT_EQ(cfg.isolation, "process");
  EXPECT_EQ(InjectionConfig{}.isolation, "thread");
  EXPECT_THROW(InjectionConfig::from_map({{"FASTFIT_ISOLATION", "fork"}}),
               ConfigError);
  // Non-default round-trips through to_map; the default is omitted so
  // pre-existing serialized configs stay byte-identical.
  EXPECT_TRUE(cfg.to_map().count("FASTFIT_ISOLATION"));
  EXPECT_FALSE(InjectionConfig{}.to_map().count("FASTFIT_ISOLATION"));
}

TEST(Config, SnapshotKnobsValidate) {
  const auto cfg = InjectionConfig::from_map(
      {{"FASTFIT_SNAPSHOTS", "off"}, {"FASTFIT_SNAPSHOT_CACHE_MB", "64"}});
  EXPECT_EQ(cfg.snapshots, "off");
  EXPECT_EQ(cfg.snapshot_cache_mb, 64u);
  EXPECT_EQ(InjectionConfig{}.snapshots, "auto");
  EXPECT_EQ(InjectionConfig{}.snapshot_cache_mb, 256u);
  EXPECT_THROW(InjectionConfig::from_map({{"FASTFIT_SNAPSHOTS", "maybe"}}),
               ConfigError);
  EXPECT_THROW(
      InjectionConfig::from_map({{"FASTFIT_SNAPSHOT_CACHE_MB", "0"}}),
      ConfigError);
  // Non-default values round-trip through to_map; defaults are omitted.
  EXPECT_TRUE(cfg.to_map().count("FASTFIT_SNAPSHOTS"));
  EXPECT_TRUE(cfg.to_map().count("FASTFIT_SNAPSHOT_CACHE_MB"));
  EXPECT_FALSE(InjectionConfig{}.to_map().count("FASTFIT_SNAPSHOTS"));
}

TEST(Config, FaultModelKnobsValidate) {
  const auto cfg = InjectionConfig::from_map({
      {"FASTFIT_FAULT_MODELS", "rank-death@nth=2,message-drop"},
      {"FASTFIT_REPAIR", "1"},
  });
  // Raw text: inject::parse_fault_models owns the grammar.
  EXPECT_EQ(cfg.fault_models, "rank-death@nth=2,message-drop");
  EXPECT_TRUE(cfg.repair);
  EXPECT_EQ(InjectionConfig{}.fault_models, "");
  EXPECT_FALSE(InjectionConfig{}.repair);
  EXPECT_THROW(InjectionConfig::from_map({{"FASTFIT_FAULT_MODELS", ""}}),
               ConfigError);
  EXPECT_TRUE(cfg.to_map().count("FASTFIT_FAULT_MODELS"));
  EXPECT_TRUE(cfg.to_map().count("FASTFIT_REPAIR"));
  EXPECT_FALSE(InjectionConfig{}.to_map().count("FASTFIT_FAULT_MODELS"));
  EXPECT_FALSE(InjectionConfig{}.to_map().count("FASTFIT_REPAIR"));
}

TEST(Config, ShardAndPassesAreStoredRaw) {
  // Raw text here; core/shard.hpp and core/pipeline.hpp own the
  // semantics (and the CLI parses through them).
  const auto cfg = InjectionConfig::from_map(
      {{"FASTFIT_SHARD", "2/4"}, {"FASTFIT_PASSES", "context,semantic"}});
  EXPECT_EQ(cfg.shard, "2/4");
  EXPECT_EQ(cfg.passes, "context,semantic");
  EXPECT_THROW(InjectionConfig::from_map({{"FASTFIT_SHARD", ""}}),
               ConfigError);
  EXPECT_THROW(InjectionConfig::from_map({{"FASTFIT_PASSES", ""}}),
               ConfigError);
}

TEST(Config, ShardAndPassesRoundTripThroughMap) {
  auto cfg = InjectionConfig::from_map(
      {{"FASTFIT_SHARD", "1/8"}, {"FASTFIT_PASSES", "semantic"}});
  const auto cfg2 = InjectionConfig::from_map(cfg.to_map());
  EXPECT_EQ(cfg2.shard, "1/8");
  EXPECT_EQ(cfg2.passes, "semantic");
  const auto defaults = InjectionConfig{}.to_map();
  EXPECT_EQ(defaults.count("FASTFIT_SHARD"), 0u);
  EXPECT_EQ(defaults.count("FASTFIT_PASSES"), 0u);
}

TEST(Config, ShardAndPassesReadFromEnvironment) {
  ::setenv("FASTFIT_SHARD", "3/4", 1);
  ::setenv("FASTFIT_PASSES", "semantic,context", 1);
  const auto cfg = InjectionConfig::from_environment();
  EXPECT_EQ(cfg.shard, "3/4");
  EXPECT_EQ(cfg.passes, "semantic,context");
  ::unsetenv("FASTFIT_SHARD");
  ::unsetenv("FASTFIT_PASSES");
}

}  // namespace
}  // namespace fastfit

#include "support/config.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "support/error.hpp"

namespace fastfit {
namespace {

TEST(Config, Defaults) {
  const auto cfg = InjectionConfig::from_map({});
  EXPECT_EQ(cfg.num_inj, 100u);
  EXPECT_FALSE(cfg.inv_id.has_value());
  EXPECT_FALSE(cfg.call_id.has_value());
  EXPECT_FALSE(cfg.rank_id.has_value());
  EXPECT_FALSE(cfg.param_id.has_value());
}

TEST(Config, ParsesAllTableTwoVariables) {
  const auto cfg = InjectionConfig::from_map({{"NUM_INJ", "250"},
                                              {"INV_ID", "17"},
                                              {"CALL_ID", "3"},
                                              {"RANK_ID", "31"},
                                              {"PARAM_ID", "4"},
                                              {"FASTFIT_SEED", "99"}});
  EXPECT_EQ(cfg.num_inj, 250u);
  EXPECT_EQ(cfg.inv_id, 17u);
  EXPECT_EQ(cfg.call_id, 3u);
  EXPECT_EQ(cfg.rank_id, 31u);
  EXPECT_EQ(cfg.param_id, 4);
  EXPECT_EQ(cfg.seed, 99u);
}

TEST(Config, RejectsUnknownKey) {
  EXPECT_THROW(InjectionConfig::from_map({{"BOGUS", "1"}}), ConfigError);
}

TEST(Config, RejectsNonNumeric) {
  EXPECT_THROW(InjectionConfig::from_map({{"NUM_INJ", "ten"}}), ConfigError);
  EXPECT_THROW(InjectionConfig::from_map({{"NUM_INJ", ""}}), ConfigError);
  EXPECT_THROW(InjectionConfig::from_map({{"NUM_INJ", "-5"}}), ConfigError);
}

TEST(Config, RejectsZeroTrials) {
  EXPECT_THROW(InjectionConfig::from_map({{"NUM_INJ", "0"}}), ConfigError);
}

TEST(Config, EnforcesTableTwoFieldWidths) {
  // The paper allots 3 decimal digits to INV_ID / CALL_ID and 1 to PARAM_ID.
  EXPECT_NO_THROW(InjectionConfig::from_map({{"INV_ID", "999"}}));
  EXPECT_THROW(InjectionConfig::from_map({{"INV_ID", "1000"}}), ConfigError);
  EXPECT_THROW(InjectionConfig::from_map({{"CALL_ID", "1000"}}), ConfigError);
  EXPECT_NO_THROW(InjectionConfig::from_map({{"PARAM_ID", "9"}}));
  EXPECT_THROW(InjectionConfig::from_map({{"PARAM_ID", "10"}}), ConfigError);
}

TEST(Config, RejectsOverflow) {
  EXPECT_THROW(InjectionConfig::from_map({{"NUM_INJ", "99999999999999999999"}}),
               ConfigError);
}

TEST(Config, RoundTripsThroughMap) {
  auto cfg = InjectionConfig::from_map(
      {{"NUM_INJ", "50"}, {"CALL_ID", "7"}, {"PARAM_ID", "2"}});
  const auto cfg2 = InjectionConfig::from_map(cfg.to_map());
  EXPECT_EQ(cfg2.num_inj, 50u);
  EXPECT_EQ(cfg2.call_id, 7u);
  EXPECT_EQ(cfg2.param_id, 2);
  EXPECT_FALSE(cfg2.inv_id.has_value());
}

TEST(Config, ParallelTrialsDefaultsToAuto) {
  const auto cfg = InjectionConfig::from_map({});
  EXPECT_EQ(cfg.parallel_trials, 0u);  // 0 = auto-sized pool
}

TEST(Config, ParsesAndValidatesParallelTrials) {
  const auto cfg =
      InjectionConfig::from_map({{"FASTFIT_PARALLEL_TRIALS", "4"}});
  EXPECT_EQ(cfg.parallel_trials, 4u);
  EXPECT_THROW(InjectionConfig::from_map({{"FASTFIT_PARALLEL_TRIALS", "-1"}}),
               ConfigError);
  EXPECT_THROW(InjectionConfig::from_map({{"FASTFIT_PARALLEL_TRIALS", "two"}}),
               ConfigError);
  EXPECT_THROW(
      InjectionConfig::from_map({{"FASTFIT_PARALLEL_TRIALS", "5000"}}),
      ConfigError);
}

TEST(Config, ParallelTrialsRoundTripsThroughMap) {
  auto cfg = InjectionConfig::from_map({{"FASTFIT_PARALLEL_TRIALS", "8"}});
  const auto cfg2 = InjectionConfig::from_map(cfg.to_map());
  EXPECT_EQ(cfg2.parallel_trials, 8u);
  // The auto default is not emitted, keeping Table II maps minimal.
  EXPECT_EQ(InjectionConfig{}.to_map().count("FASTFIT_PARALLEL_TRIALS"), 0u);
}

TEST(Config, FromEnvironmentReadsTableTwoNames) {
  ::setenv("NUM_INJ", "33", 1);
  ::setenv("RANK_ID", "5", 1);
  const auto cfg = InjectionConfig::from_environment();
  EXPECT_EQ(cfg.num_inj, 33u);
  EXPECT_EQ(cfg.rank_id, 5u);
  ::unsetenv("NUM_INJ");
  ::unsetenv("RANK_ID");
}

}  // namespace
}  // namespace fastfit

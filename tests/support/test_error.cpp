#include "support/error.hpp"

#include <gtest/gtest.h>

namespace fastfit {
namespace {

TEST(Error, MpiErrorCarriesCodeAndName) {
  const MpiError e(MpiErrc::InvalidDatatype, "handle 0xdead");
  EXPECT_EQ(e.code(), MpiErrc::InvalidDatatype);
  EXPECT_NE(std::string(e.what()).find("MPI_ERR_TYPE"), std::string::npos);
  EXPECT_NE(std::string(e.what()).find("0xdead"), std::string::npos);
}

TEST(Error, AllMpiErrcNamesAreDistinct) {
  const MpiErrc codes[] = {
      MpiErrc::InvalidComm,   MpiErrc::InvalidDatatype, MpiErrc::InvalidOp,
      MpiErrc::InvalidCount,  MpiErrc::InvalidRoot,     MpiErrc::InvalidBuffer,
      MpiErrc::InvalidTag,    MpiErrc::InvalidRank,     MpiErrc::TypeMismatch,
      MpiErrc::CountMismatch, MpiErrc::Truncate,        MpiErrc::Internal};
  for (std::size_t i = 0; i < std::size(codes); ++i) {
    for (std::size_t j = i + 1; j < std::size(codes); ++j) {
      EXPECT_STRNE(to_string(codes[i]), to_string(codes[j]));
    }
  }
}

TEST(Error, HierarchyUnderFaultEvent) {
  // Outcome classification relies on every failure mode deriving from
  // FaultEvent (and on WorldAborted being distinguishable).
  EXPECT_THROW(throw MpiError(MpiErrc::InvalidOp, "x"), FaultEvent);
  EXPECT_THROW(throw SimSegFault(0x1000, 64, "oob"), FaultEvent);
  EXPECT_THROW(throw AppError("inconsistent state"), FaultEvent);
  EXPECT_THROW(throw SimTimeout("hang"), FaultEvent);
  EXPECT_THROW(throw WorldAborted("peer died"), FaultEvent);
}

TEST(Error, ConfigAndInternalAreNotFaultEvents) {
  try {
    throw ConfigError("bad knob");
  } catch (const FaultEvent&) {
    FAIL() << "ConfigError must not classify as a fault";
  } catch (const FastFitError&) {
    SUCCEED();
  }
  try {
    throw InternalError("bug");
  } catch (const FaultEvent&) {
    FAIL() << "InternalError must not classify as a fault";
  } catch (const FastFitError&) {
    SUCCEED();
  }
}

TEST(Error, SimSegFaultCarriesAccessDetails) {
  const SimSegFault e(0xABCD, 128, "write past buffer");
  EXPECT_EQ(e.address(), 0xABCDu);
  EXPECT_EQ(e.length(), 128u);
}

}  // namespace
}  // namespace fastfit

#include "inject/fault_model.hpp"

#include <gtest/gtest.h>

#include <array>

#include "support/bitops.hpp"
#include "support/error.hpp"

namespace fastfit::inject {
namespace {

std::span<std::byte> as_span(std::array<std::byte, 8>& a) {
  return {a.data(), a.size()};
}
std::span<const std::byte> as_cspan(const std::array<std::byte, 8>& a) {
  return {a.data(), a.size()};
}

TEST(FaultModel, NamesDistinct) {
  for (std::size_t a = 0; a < kNumFaultModels; ++a) {
    for (std::size_t b = a + 1; b < kNumFaultModels; ++b) {
      EXPECT_STRNE(to_string(static_cast<FaultModel>(a)),
                   to_string(static_cast<FaultModel>(b)));
    }
  }
}

TEST(FaultModel, SingleBitFlipsExactlyOne) {
  RngStream rng(1, "fm");
  for (int i = 0; i < 50; ++i) {
    std::array<std::byte, 8> buf{};
    const auto before = buf;
    EXPECT_TRUE(mutate_bytes(as_span(buf), FaultModel::SingleBitFlip, rng));
    EXPECT_EQ(hamming_distance(as_cspan(before), as_cspan(buf)), 1u);
  }
}

TEST(FaultModel, DoubleBitFlipsExactlyTwoDistinct) {
  RngStream rng(2, "fm");
  for (int i = 0; i < 50; ++i) {
    std::array<std::byte, 8> buf{};
    const auto before = buf;
    EXPECT_TRUE(mutate_bytes(as_span(buf), FaultModel::DoubleBitFlip, rng));
    EXPECT_EQ(hamming_distance(as_cspan(before), as_cspan(buf)), 2u);
  }
}

TEST(FaultModel, DoubleBitOnSingleBitRangeDegrades) {
  RngStream rng(3, "fm");
  std::array<std::byte, 1> one{};
  // One-bit span: both flips necessarily target distinct bits of the byte.
  EXPECT_TRUE(mutate_bytes(std::span<std::byte>(one.data(), 1),
                           FaultModel::DoubleBitFlip, rng));
  EXPECT_EQ(popcount(std::span<const std::byte>(one.data(), 1)), 2u);
}

TEST(FaultModel, StuckAtZeroOnlyClearsBits) {
  RngStream rng(4, "fm");
  std::array<std::byte, 8> all_ones;
  all_ones.fill(std::byte{0xFF});
  const auto before = all_ones;
  EXPECT_TRUE(mutate_bytes(as_span(all_ones), FaultModel::StuckAtZero, rng));
  EXPECT_EQ(hamming_distance(as_cspan(before), as_cspan(all_ones)), 1u);
  EXPECT_EQ(popcount(as_cspan(all_ones)), 63u);
}

TEST(FaultModel, StuckAtZeroOnZeroesIsNoOp) {
  RngStream rng(5, "fm");
  std::array<std::byte, 8> zeros{};
  EXPECT_FALSE(mutate_bytes(as_span(zeros), FaultModel::StuckAtZero, rng));
  EXPECT_EQ(popcount(as_cspan(zeros)), 0u);
}

TEST(FaultModel, RandomByteChangesAtMostOneByte) {
  RngStream rng(6, "fm");
  for (int i = 0; i < 50; ++i) {
    std::array<std::byte, 8> buf{};
    buf.fill(std::byte{0xA5});
    int changed_bytes = 0;
    const bool changed = mutate_bytes(as_span(buf), FaultModel::RandomByte,
                                      rng);
    for (std::byte b : buf) {
      if (b != std::byte{0xA5}) ++changed_bytes;
    }
    EXPECT_EQ(changed_bytes, changed ? 1 : 0);
    EXPECT_LE(changed_bytes, 1);
  }
}

TEST(FaultModel, EmptyRangeIsAlwaysNoOp) {
  RngStream rng(7, "fm");
  for (std::size_t m = 0; m < kNumFaultModels; ++m) {
    EXPECT_FALSE(mutate_bytes({}, static_cast<FaultModel>(m), rng));
  }
}

TEST(FaultModel, MutateValueReportsChange) {
  RngStream rng(8, "fm");
  bool changed = false;
  const std::int32_t v =
      mutate_value<std::int32_t>(0, FaultModel::StuckAtZero, rng, &changed);
  EXPECT_EQ(v, 0);
  EXPECT_FALSE(changed);
  const std::int32_t w =
      mutate_value<std::int32_t>(0x0F0F0F0F, FaultModel::SingleBitFlip, rng,
                                 &changed);
  EXPECT_NE(w, 0x0F0F0F0F);
  EXPECT_TRUE(changed);
}

TEST(FaultModel, DeterministicPerStream) {
  for (std::size_t m = 0; m < kNumFaultModels; ++m) {
    if (!is_parameter_model(static_cast<FaultModel>(m))) continue;
    RngStream r1(9, "fm", m);
    RngStream r2(9, "fm", m);
    std::array<std::byte, 8> a;
    std::array<std::byte, 8> b;
    a.fill(std::byte{0x3C});
    b.fill(std::byte{0x3C});
    mutate_bytes(as_span(a), static_cast<FaultModel>(m), r1);
    mutate_bytes(as_span(b), static_cast<FaultModel>(m), r2);
    EXPECT_EQ(a, b) << to_string(static_cast<FaultModel>(m));
  }
}

TEST(FaultModel, StuckAtOneOnlySetsBits) {
  RngStream rng(10, "fm");
  std::array<std::byte, 8> zeros{};
  const auto before = zeros;
  EXPECT_TRUE(mutate_bytes(as_span(zeros), FaultModel::StuckAtOne, rng));
  EXPECT_EQ(hamming_distance(as_cspan(before), as_cspan(zeros)), 1u);
  EXPECT_EQ(popcount(as_cspan(zeros)), 1u);
}

TEST(FaultModel, StuckAtOneOnAllOnesIsNoOp) {
  RngStream rng(11, "fm");
  std::array<std::byte, 8> ones;
  ones.fill(std::byte{0xFF});
  EXPECT_FALSE(mutate_bytes(as_span(ones), FaultModel::StuckAtOne, rng));
  EXPECT_EQ(popcount(as_cspan(ones)), 64u);
}

TEST(FaultModel, NonParameterModelsHaveNoByteManifestation) {
  RngStream rng(12, "fm");
  std::array<std::byte, 8> buf{};
  for (const auto model :
       {FaultModel::MessageCorrupt, FaultModel::MessageDelay,
        FaultModel::MessageDrop, FaultModel::RankDeath}) {
    EXPECT_FALSE(is_parameter_model(model));
    EXPECT_THROW(mutate_bytes(as_span(buf), model, rng), InternalError);
  }
}

TEST(FaultModel, SingleByteSpanStaysInRange) {
  // A one-byte span exercises the smallest non-empty range of every
  // parameter mutator: the mutation must land inside the byte and report
  // manifestation truthfully.
  for (std::size_t m = 0; m < kNumFaultModels; ++m) {
    const auto model = static_cast<FaultModel>(m);
    if (!is_parameter_model(model)) continue;
    RngStream rng(13, "fm", m);
    std::array<std::byte, 1> one{std::byte{0x55}};
    const auto before = one[0];
    const bool changed = mutate_bytes(std::span<std::byte>(one.data(), 1),
                                      model, rng);
    EXPECT_EQ(one[0] != before, changed) << to_string(model);
  }
}

TEST(FaultModel, DoubleBitFlipAlwaysPicksDistinctBits) {
  RngStream rng(14, "fm");
  for (int i = 0; i < 200; ++i) {
    std::array<std::byte, 2> buf{};
    EXPECT_TRUE(mutate_bytes(std::span<std::byte>(buf.data(), buf.size()),
                             FaultModel::DoubleBitFlip, rng));
    // Two distinct target bits on an all-zero buffer leave exactly two
    // set bits; a repeated bit would leave zero.
    EXPECT_EQ(popcount(std::span<const std::byte>(buf.data(), buf.size())),
              2u);
  }
}

TEST(FaultModel, MutateValueChangedFalseOnNoOp) {
  // StuckAtOne on an all-ones value is a provable no-op and the changed
  // out-param must say so.
  RngStream rng(15, "fm");
  bool changed = true;
  const std::uint32_t v = mutate_value<std::uint32_t>(
      0xFFFFFFFFu, FaultModel::StuckAtOne, rng, &changed);
  EXPECT_EQ(v, 0xFFFFFFFFu);
  EXPECT_FALSE(changed);
}

TEST(FaultModelSpec, CanonicalRoundTrips) {
  const char* specs[] = {"single-bit-flip",      "stuck-at-one",
                         "rank-death",           "rank-death@nth=3",
                         "message-drop@prob=0.25", "message-delay",
                         "random-byte@uniform=16", "stuck-at-one@duty=1/4",
                         "stuck-at-zero@duty=3/8"};
  for (const char* text : specs) {
    const auto spec = FaultModelSpec::parse(text);
    EXPECT_EQ(spec.canonical(), text);
    EXPECT_EQ(FaultModelSpec::parse(spec.canonical()), spec);
  }
}

TEST(FaultModelSpec, DefaultIsExactPointSingleBitFlip) {
  const FaultModelSpec spec;
  EXPECT_TRUE(spec.is_default());
  EXPECT_EQ(spec.canonical(), "single-bit-flip");
  EXPECT_EQ(FaultModelSpec::parse("single-bit-flip"), spec);
  EXPECT_EQ(FaultModelSpec::parse("single-bit-flip@exact"), spec);
}

TEST(FaultModelSpec, ParseRejectsMalformed) {
  EXPECT_THROW(FaultModelSpec::parse("nuke"), ConfigError);
  EXPECT_THROW(FaultModelSpec::parse("rank-death@sometimes"), ConfigError);
  EXPECT_THROW(FaultModelSpec::parse("rank-death@nth=0"), ConfigError);
  EXPECT_THROW(FaultModelSpec::parse("rank-death@nth=x"), ConfigError);
  EXPECT_THROW(FaultModelSpec::parse("message-drop@prob=0"), ConfigError);
  EXPECT_THROW(FaultModelSpec::parse("message-drop@prob=1.5"), ConfigError);
  EXPECT_THROW(FaultModelSpec::parse("message-drop@prob=abc"), ConfigError);
  EXPECT_THROW(FaultModelSpec::parse("single-bit-flip@exact=1"), ConfigError);
  // Duty cycles: need k/n form, 1 <= k < n, and a parameter manifestation.
  EXPECT_THROW(FaultModelSpec::parse("stuck-at-one@duty"), ConfigError);
  EXPECT_THROW(FaultModelSpec::parse("stuck-at-one@duty=4"), ConfigError);
  EXPECT_THROW(FaultModelSpec::parse("stuck-at-one@duty=0/4"), ConfigError);
  EXPECT_THROW(FaultModelSpec::parse("stuck-at-one@duty=4/4"), ConfigError);
  EXPECT_THROW(FaultModelSpec::parse("stuck-at-one@duty=5/4"), ConfigError);
  EXPECT_THROW(FaultModelSpec::parse("stuck-at-one@duty=x/4"), ConfigError);
  EXPECT_THROW(FaultModelSpec::parse("rank-death@duty=1/4"), ConfigError);
  EXPECT_THROW(FaultModelSpec::parse("message-drop@duty=1/4"), ConfigError);
}

TEST(FaultModelSpec, DutyCycleParsesKAndWindow) {
  const auto spec = FaultModelSpec::parse("stuck-at-one@duty=2/5");
  EXPECT_EQ(spec.model, FaultModel::StuckAtOne);
  EXPECT_EQ(spec.trigger, FaultTrigger::DutyCycle);
  EXPECT_EQ(spec.duty_k, 2u);
  EXPECT_EQ(spec.window, 5u);
  EXPECT_EQ(spec.canonical(), "stuck-at-one@duty=2/5");
}

TEST(FaultModelSpec, ParseListSplitsAndDeduplicates) {
  const auto specs =
      parse_fault_models(" single-bit-flip , rank-death@nth=2 ,message-drop");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].canonical(), "single-bit-flip");
  EXPECT_EQ(specs[1].canonical(), "rank-death@nth=2");
  EXPECT_EQ(specs[2].canonical(), "message-drop");
  EXPECT_EQ(canonical_fault_models(specs),
            "single-bit-flip,rank-death@nth=2,message-drop");
  EXPECT_THROW(parse_fault_models("rank-death,rank-death"), ConfigError);
}

TEST(FaultModelSpec, EmptyListYieldsDefault) {
  const auto specs = parse_fault_models("");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_TRUE(specs[0].is_default());
}

TEST(FaultModelSpec, ReplayabilityGate) {
  EXPECT_TRUE(is_replayable(FaultModelSpec{}));
  EXPECT_TRUE(is_replayable(FaultModelSpec{FaultModel::StuckAtOne}));
  EXPECT_FALSE(is_replayable(FaultModelSpec{FaultModel::MessageDrop}));
  EXPECT_FALSE(is_replayable(FaultModelSpec{FaultModel::RankDeath}));
  EXPECT_FALSE(is_replayable(
      FaultModelSpec::parse("single-bit-flip@prob=0.5")));
  EXPECT_FALSE(is_replayable(FaultModelSpec::parse("stuck-at-one@nth=2")));
  // An intermittent fault fires inside the replayed prefix too, so it can
  // never take the snapshot fast path.
  EXPECT_FALSE(is_replayable(FaultModelSpec::parse("stuck-at-one@duty=1/4")));
}

}  // namespace
}  // namespace fastfit::inject

#include "inject/fault_model.hpp"

#include <gtest/gtest.h>

#include <array>

#include "support/bitops.hpp"

namespace fastfit::inject {
namespace {

std::span<std::byte> as_span(std::array<std::byte, 8>& a) {
  return {a.data(), a.size()};
}
std::span<const std::byte> as_cspan(const std::array<std::byte, 8>& a) {
  return {a.data(), a.size()};
}

TEST(FaultModel, NamesDistinct) {
  for (std::size_t a = 0; a < kNumFaultModels; ++a) {
    for (std::size_t b = a + 1; b < kNumFaultModels; ++b) {
      EXPECT_STRNE(to_string(static_cast<FaultModel>(a)),
                   to_string(static_cast<FaultModel>(b)));
    }
  }
}

TEST(FaultModel, SingleBitFlipsExactlyOne) {
  RngStream rng(1, "fm");
  for (int i = 0; i < 50; ++i) {
    std::array<std::byte, 8> buf{};
    const auto before = buf;
    EXPECT_TRUE(mutate_bytes(as_span(buf), FaultModel::SingleBitFlip, rng));
    EXPECT_EQ(hamming_distance(as_cspan(before), as_cspan(buf)), 1u);
  }
}

TEST(FaultModel, DoubleBitFlipsExactlyTwoDistinct) {
  RngStream rng(2, "fm");
  for (int i = 0; i < 50; ++i) {
    std::array<std::byte, 8> buf{};
    const auto before = buf;
    EXPECT_TRUE(mutate_bytes(as_span(buf), FaultModel::DoubleBitFlip, rng));
    EXPECT_EQ(hamming_distance(as_cspan(before), as_cspan(buf)), 2u);
  }
}

TEST(FaultModel, DoubleBitOnSingleBitRangeDegrades) {
  RngStream rng(3, "fm");
  std::array<std::byte, 1> one{};
  // One-bit span: both flips necessarily target distinct bits of the byte.
  EXPECT_TRUE(mutate_bytes(std::span<std::byte>(one.data(), 1),
                           FaultModel::DoubleBitFlip, rng));
  EXPECT_EQ(popcount(std::span<const std::byte>(one.data(), 1)), 2u);
}

TEST(FaultModel, StuckAtZeroOnlyClearsBits) {
  RngStream rng(4, "fm");
  std::array<std::byte, 8> all_ones;
  all_ones.fill(std::byte{0xFF});
  const auto before = all_ones;
  EXPECT_TRUE(mutate_bytes(as_span(all_ones), FaultModel::StuckAtZero, rng));
  EXPECT_EQ(hamming_distance(as_cspan(before), as_cspan(all_ones)), 1u);
  EXPECT_EQ(popcount(as_cspan(all_ones)), 63u);
}

TEST(FaultModel, StuckAtZeroOnZeroesIsNoOp) {
  RngStream rng(5, "fm");
  std::array<std::byte, 8> zeros{};
  EXPECT_FALSE(mutate_bytes(as_span(zeros), FaultModel::StuckAtZero, rng));
  EXPECT_EQ(popcount(as_cspan(zeros)), 0u);
}

TEST(FaultModel, RandomByteChangesAtMostOneByte) {
  RngStream rng(6, "fm");
  for (int i = 0; i < 50; ++i) {
    std::array<std::byte, 8> buf{};
    buf.fill(std::byte{0xA5});
    int changed_bytes = 0;
    const bool changed = mutate_bytes(as_span(buf), FaultModel::RandomByte,
                                      rng);
    for (std::byte b : buf) {
      if (b != std::byte{0xA5}) ++changed_bytes;
    }
    EXPECT_EQ(changed_bytes, changed ? 1 : 0);
    EXPECT_LE(changed_bytes, 1);
  }
}

TEST(FaultModel, EmptyRangeIsAlwaysNoOp) {
  RngStream rng(7, "fm");
  for (std::size_t m = 0; m < kNumFaultModels; ++m) {
    EXPECT_FALSE(mutate_bytes({}, static_cast<FaultModel>(m), rng));
  }
}

TEST(FaultModel, MutateValueReportsChange) {
  RngStream rng(8, "fm");
  bool changed = false;
  const std::int32_t v =
      mutate_value<std::int32_t>(0, FaultModel::StuckAtZero, rng, &changed);
  EXPECT_EQ(v, 0);
  EXPECT_FALSE(changed);
  const std::int32_t w =
      mutate_value<std::int32_t>(0x0F0F0F0F, FaultModel::SingleBitFlip, rng,
                                 &changed);
  EXPECT_NE(w, 0x0F0F0F0F);
  EXPECT_TRUE(changed);
}

TEST(FaultModel, DeterministicPerStream) {
  for (std::size_t m = 0; m < kNumFaultModels; ++m) {
    RngStream r1(9, "fm", m);
    RngStream r2(9, "fm", m);
    std::array<std::byte, 8> a;
    std::array<std::byte, 8> b;
    a.fill(std::byte{0x3C});
    b.fill(std::byte{0x3C});
    mutate_bytes(as_span(a), static_cast<FaultModel>(m), r1);
    mutate_bytes(as_span(b), static_cast<FaultModel>(m), r2);
    EXPECT_EQ(a, b) << to_string(static_cast<FaultModel>(m));
  }
}

}  // namespace
}  // namespace fastfit::inject

// Parameter-corruption unit tests: every injectable parameter must be
// reachable and the flip must follow the single-bit fault model.

#include <gtest/gtest.h>

#include "inject/corrupt.hpp"
#include "minimpi/mpi.hpp"
#include "support/bitops.hpp"

namespace fastfit::inject {
namespace {

using namespace std::chrono_literals;

// Runs `body` on a 2-rank world's rank 0 with a prepared allreduce call.
template <typename Body>
void with_allreduce_call(Body body) {
  mpi::WorldOptions o;
  o.nranks = 2;
  o.watchdog = 2000ms;
  mpi::World world(o);
  world.run([&](mpi::Mpi& mpi) {
    if (mpi.world_rank() != 0) return;
    mpi::RegisteredBuffer<double> send(mpi.registry(), 8, 1.5);
    mpi::RegisteredBuffer<double> recv(mpi.registry(), 8);
    mpi::CollectiveCall call;
    call.kind = mpi::CollectiveKind::Allreduce;
    call.sendbuf = send.data();
    call.recvbuf = recv.data();
    call.count = 8;
    call.datatype = mpi::kDouble;
    call.op = mpi::kSum;
    call.comm = mpi::kCommWorld;
    body(call, mpi, send, recv);
  });
}

TEST(Corrupt, SendBufFlipsExactlyOneBit) {
  with_allreduce_call([](mpi::CollectiveCall& call, mpi::Mpi& mpi,
                         mpi::RegisteredBuffer<double>& send,
                         mpi::RegisteredBuffer<double>&) {
    std::vector<double> before(send.begin(), send.end());
    RngStream rng(7, "t");
    ASSERT_TRUE(corrupt_parameter(call, mpi::Param::SendBuf, rng, mpi));
    const auto dist = hamming_distance(
        std::span<const std::byte>(
            reinterpret_cast<const std::byte*>(before.data()),
            before.size() * sizeof(double)),
        std::span<const std::byte>(
            reinterpret_cast<const std::byte*>(send.data()),
            send.size() * sizeof(double)));
    EXPECT_EQ(dist, 1u);
  });
}

TEST(Corrupt, RecvBufFlipStaysInsideBuffer) {
  with_allreduce_call([](mpi::CollectiveCall& call, mpi::Mpi& mpi,
                         mpi::RegisteredBuffer<double>&,
                         mpi::RegisteredBuffer<double>& recv) {
    std::vector<double> before(recv.begin(), recv.end());
    RngStream rng(9, "t");
    ASSERT_TRUE(corrupt_parameter(call, mpi::Param::RecvBuf, rng, mpi));
    int changed = 0;
    for (std::size_t i = 0; i < recv.size(); ++i) {
      if (before[i] != recv[i]) ++changed;
    }
    EXPECT_EQ(changed, 1);
  });
}

TEST(Corrupt, ScalarParamsChangeByOneBit) {
  with_allreduce_call([](mpi::CollectiveCall& call, mpi::Mpi& mpi,
                         mpi::RegisteredBuffer<double>&,
                         mpi::RegisteredBuffer<double>&) {
    for (int round = 0; round < 16; ++round) {
      auto copy = call;
      RngStream rng(100 + static_cast<std::uint64_t>(round), "t");
      ASSERT_TRUE(corrupt_parameter(copy, mpi::Param::Count, rng, mpi));
      const std::uint32_t diff = static_cast<std::uint32_t>(copy.count) ^
                                 static_cast<std::uint32_t>(call.count);
      EXPECT_NE(diff, 0u);
      EXPECT_EQ(diff & (diff - 1), 0u) << "more than one bit flipped";
    }
  });
}

TEST(Corrupt, HandleParamsFlipOneBitOfRawHandle) {
  with_allreduce_call([](mpi::CollectiveCall& call, mpi::Mpi& mpi,
                         mpi::RegisteredBuffer<double>&,
                         mpi::RegisteredBuffer<double>&) {
    for (auto param :
         {mpi::Param::Datatype, mpi::Param::Op, mpi::Param::Comm}) {
      auto copy = call;
      RngStream rng(55, "t");
      ASSERT_TRUE(corrupt_parameter(copy, param, rng, mpi));
      const auto xorred =
          param == mpi::Param::Datatype
              ? (mpi::raw(copy.datatype) ^ mpi::raw(call.datatype))
              : param == mpi::Param::Op
                    ? (mpi::raw(copy.op) ^ mpi::raw(call.op))
                    : (mpi::raw(copy.comm) ^ mpi::raw(call.comm));
      EXPECT_NE(xorred, 0u);
      EXPECT_EQ(xorred & (xorred - 1), 0u);
    }
  });
}

TEST(Corrupt, ZeroCountBufferFizzles) {
  with_allreduce_call([](mpi::CollectiveCall& call, mpi::Mpi& mpi,
                         mpi::RegisteredBuffer<double>&,
                         mpi::RegisteredBuffer<double>&) {
    call.count = 0;
    RngStream rng(3, "t");
    EXPECT_FALSE(corrupt_parameter(call, mpi::Param::SendBuf, rng, mpi));
  });
}

TEST(Corrupt, UnmappedBufferFizzlesInsteadOfCrashing) {
  with_allreduce_call([](mpi::CollectiveCall& call, mpi::Mpi& mpi,
                         mpi::RegisteredBuffer<double>&,
                         mpi::RegisteredBuffer<double>&) {
    double unregistered[8] = {};
    call.sendbuf = unregistered;
    RngStream rng(3, "t");
    EXPECT_FALSE(corrupt_parameter(call, mpi::Param::SendBuf, rng, mpi));
  });
}

TEST(Corrupt, DeterministicPerTrialStream) {
  with_allreduce_call([](mpi::CollectiveCall& call, mpi::Mpi& mpi,
                         mpi::RegisteredBuffer<double>&,
                         mpi::RegisteredBuffer<double>&) {
    auto a = call;
    auto b = call;
    RngStream r1(42, "bitflip", 5);
    RngStream r2(42, "bitflip", 5);
    corrupt_parameter(a, mpi::Param::Count, r1, mpi);
    corrupt_parameter(b, mpi::Param::Count, r2, mpi);
    EXPECT_EQ(a.count, b.count);
  });
}

TEST(Corrupt, AlltoallvCountFaultLandsInArray) {
  mpi::WorldOptions o;
  o.nranks = 2;
  o.watchdog = 2000ms;
  mpi::World world(o);
  world.run([&](mpi::Mpi& mpi) {
    if (mpi.world_rank() != 0) return;
    std::vector<std::int32_t> scounts{1, 1};
    std::vector<std::int32_t> sdispls{0, 1};
    mpi::CollectiveCall call;
    call.kind = mpi::CollectiveKind::Alltoallv;
    call.sendcounts = &scounts;
    call.sdispls = &sdispls;
    call.comm = mpi::kCommWorld;
    const auto before = scounts;
    RngStream rng(11, "t");
    ASSERT_TRUE(corrupt_parameter(call, mpi::Param::Count, rng, mpi));
    EXPECT_NE(scounts, before);
    int changed = 0;
    for (std::size_t i = 0; i < scounts.size(); ++i) {
      if (scounts[i] != before[i]) ++changed;
    }
    EXPECT_EQ(changed, 1);
  });
}

}  // namespace
}  // namespace fastfit::inject

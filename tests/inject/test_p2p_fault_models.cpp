// Point-to-point corruption under every fault model.

#include <gtest/gtest.h>

#include "inject/p2p_injector.hpp"
#include "minimpi/mpi.hpp"

namespace fastfit::inject {
namespace {

using namespace std::chrono_literals;

template <typename Body>
void with_p2p_call(Body body) {
  mpi::WorldOptions o;
  o.nranks = 2;
  o.watchdog = 2000ms;
  mpi::World world(o);
  world.run([&](mpi::Mpi& mpi) {
    if (mpi.world_rank() != 0) return;
    mpi::RegisteredBuffer<double> buf(mpi.registry(), 8, 2.0);
    mpi::P2pCall call;
    call.kind = mpi::P2pKind::Send;
    call.buffer = buf.data();
    call.count = 8;
    call.datatype = mpi::kDouble;
    call.peer = 1;
    call.tag = 4;
    call.comm = mpi::kCommWorld;
    body(call, mpi, buf);
  });
}

class P2pModelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(P2pModelSweep, BufferMutationStaysInsideBuffer) {
  const auto model = static_cast<FaultModel>(GetParam());
  with_p2p_call([model](mpi::P2pCall& call, mpi::Mpi& mpi,
                        mpi::RegisteredBuffer<double>& buf) {
    std::vector<double> before(buf.begin(), buf.end());
    RngStream rng(17, "p2p-fm", GetParam());
    const bool changed =
        corrupt_p2p_parameter(call, mpi::P2pParam::Buffer, model, rng, mpi);
    int diffs = 0;
    for (std::size_t i = 0; i < buf.size(); ++i) {
      if (before[i] != buf[i]) ++diffs;
    }
    if (changed) {
      EXPECT_GE(diffs, 1);
      EXPECT_LE(diffs, 2);  // double-bit may straddle two doubles
    } else {
      EXPECT_EQ(diffs, 0);
    }
  });
}

TEST_P(P2pModelSweep, ScalarParamsMutateOrReportNoOp) {
  const auto model = static_cast<FaultModel>(GetParam());
  with_p2p_call([model](mpi::P2pCall& call, mpi::Mpi& mpi,
                        mpi::RegisteredBuffer<double>&) {
    for (auto param : {mpi::P2pParam::Count, mpi::P2pParam::Datatype,
                       mpi::P2pParam::Peer, mpi::P2pParam::Tag}) {
      auto copy = call;
      RngStream rng(29, "p2p-fm2", GetParam());
      const bool changed =
          corrupt_p2p_parameter(copy, param, model, rng, mpi);
      const bool actually_different =
          copy.count != call.count || copy.datatype != call.datatype ||
          copy.peer != call.peer || copy.tag != call.tag;
      EXPECT_EQ(changed, actually_different)
          << to_string(model) << " " << mpi::to_string(param);
    }
  });
}

// Parameter-mutation models only (indices 0-4): the p2p injector mutates
// call parameters in place, which the message/fail-stop manifestations
// never do.
INSTANTIATE_TEST_SUITE_P(AllModels, P2pModelSweep,
                         ::testing::Range<std::size_t>(0, 5),
                         [](const auto& info) {
                           std::string name =
                               to_string(static_cast<FaultModel>(info.param));
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(P2pCorrupt, NullBufferFizzles) {
  with_p2p_call([](mpi::P2pCall& call, mpi::Mpi& mpi,
                   mpi::RegisteredBuffer<double>&) {
    call.buffer = nullptr;
    RngStream rng(1, "x");
    EXPECT_FALSE(corrupt_p2p_parameter(call, mpi::P2pParam::Buffer,
                                       FaultModel::SingleBitFlip, rng, mpi));
  });
}

TEST(P2pCorrupt, InvalidDatatypeBufferFizzles) {
  // A buffer fault cannot be sized when the datatype is already garbage.
  with_p2p_call([](mpi::P2pCall& call, mpi::Mpi& mpi,
                   mpi::RegisteredBuffer<double>&) {
    call.datatype = static_cast<mpi::Datatype>(0xDEAD);
    RngStream rng(2, "x");
    EXPECT_FALSE(corrupt_p2p_parameter(call, mpi::P2pParam::Buffer,
                                       FaultModel::SingleBitFlip, rng, mpi));
  });
}

}  // namespace
}  // namespace fastfit::inject

// Injector targeting and outcome classification.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <vector>

#include "inject/injector.hpp"
#include "inject/outcome.hpp"
#include "minimpi/mpi.hpp"

namespace fastfit::inject {
namespace {

using namespace std::chrono_literals;

mpi::WorldOptions opts(int n) {
  mpi::WorldOptions o;
  o.nranks = n;
  o.watchdog = 2000ms;
  return o;
}

// A rank main with one allreduce site invoked `reps` times; records the
// recv value of the target rank per invocation.
struct AllreduceLoop {
  int reps = 3;
  void operator()(mpi::Mpi& mpi) const {
    mpi::RegisteredBuffer<double> send(mpi.registry(), 4, 1.0);
    mpi::RegisteredBuffer<double> recv(mpi.registry(), 4);
    for (int i = 0; i < reps; ++i) {
      mpi.allreduce(send.data(), recv.data(), 4, mpi::kDouble, mpi::kSum);
    }
  }
};

std::uint32_t discover_site_id(int nranks) {
  // Run once with a recording hook to learn the site id of the loop above.
  class Recorder : public mpi::ToolHooks {
   public:
    void on_enter(mpi::CollectiveCall& call, mpi::Mpi&) override {
      site.store(call.site_id);
    }
    void on_exit(const mpi::CollectiveCall&, mpi::Mpi&) override {}
    std::atomic<std::uint32_t> site{0};
  } recorder;
  mpi::World world(opts(nranks));
  world.set_tools(&recorder);
  world.run([](mpi::Mpi& mpi) { AllreduceLoop{}(mpi); });
  return recorder.site.load();
}

TEST(Injector, FiresOnlyOnTargetCoordinates) {
  const auto site = discover_site_id(2);
  ASSERT_NE(site, 0u);

  FaultSpec spec;
  spec.site_id = site;
  spec.rank = 1;
  spec.invocation = 2;
  spec.param = mpi::Param::Count;
  spec.trial = 0;

  Injector injector(spec, /*seed=*/42);
  mpi::World world(opts(2));
  world.set_tools(&injector);
  world.run([](mpi::Mpi& mpi) { AllreduceLoop{}(mpi); });
  EXPECT_TRUE(injector.fired());
}

TEST(Injector, DoesNotFireOnWrongSite) {
  FaultSpec spec;
  spec.site_id = 0xDEADBEEF;  // no such site
  spec.rank = 0;
  spec.invocation = 0;
  spec.param = mpi::Param::Count;

  Injector injector(spec, 42);
  mpi::World world(opts(2));
  world.set_tools(&injector);
  const auto result = world.run([](mpi::Mpi& mpi) { AllreduceLoop{}(mpi); });
  EXPECT_TRUE(result.clean());
  EXPECT_FALSE(injector.fired());
}

TEST(Injector, DoesNotFireBeyondLastInvocation) {
  const auto site = discover_site_id(2);
  FaultSpec spec;
  spec.site_id = site;
  spec.rank = 0;
  spec.invocation = 99;  // loop only runs 3 invocations
  spec.param = mpi::Param::Count;

  Injector injector(spec, 42);
  mpi::World world(opts(2));
  world.set_tools(&injector);
  const auto result = world.run([](mpi::Mpi& mpi) { AllreduceLoop{}(mpi); });
  EXPECT_TRUE(result.clean());
  EXPECT_FALSE(injector.fired());
}

TEST(Injector, FiresAtMostOnce) {
  const auto site = discover_site_id(2);
  FaultSpec spec;
  spec.site_id = site;
  spec.rank = 0;
  spec.invocation = 0;
  spec.param = mpi::Param::SendBuf;  // harmless corruption

  Injector injector(spec, 42);
  mpi::World world(opts(2));
  world.set_tools(&injector);
  world.run([](mpi::Mpi& mpi) { AllreduceLoop{}(mpi); });
  EXPECT_TRUE(injector.fired());
  EXPECT_FALSE(injector.fizzled());
}

TEST(Injector, DutyCycleFiresRepeatedlyOnTheSameBit) {
  const auto site = discover_site_id(2);
  ASSERT_NE(site, 0u);

  FaultSpec spec;
  spec.site_id = site;
  spec.rank = 0;
  spec.invocation = 0;  // ignored: the duty trigger counts calls, not points
  spec.param = mpi::Param::SendBuf;
  spec.fault = FaultModelSpec::parse("single-bit-flip@duty=1/2");

  Injector injector(spec, 42);
  mpi::World world(opts(2));
  world.set_tools(&injector);
  // The same manifestation stream re-fires on calls 0 and 2 (duty 1/2),
  // flipping the same send-buffer bit each time: the corruption appears,
  // survives the quiet call, then self-cancels on the second fire.
  auto diffs = std::make_shared<std::array<bool, 4>>();
  world.add_keepalive(diffs);
  world.run([diffs](mpi::Mpi& mpi) {
    mpi::RegisteredBuffer<double> send(mpi.registry(), 4, 1.0);
    mpi::RegisteredBuffer<double> recv(mpi.registry(), 4);
    const std::vector<double> pristine(send.data(), send.data() + 4);
    for (int i = 0; i < 4; ++i) {
      mpi.allreduce(send.data(), recv.data(), 4, mpi::kDouble, mpi::kSum);
      if (mpi.world_rank() == 0) {
        (*diffs)[static_cast<std::size_t>(i)] =
            !std::equal(pristine.begin(), pristine.end(), send.data());
      }
    }
  });
  EXPECT_TRUE(injector.fired());
  EXPECT_FALSE(injector.fizzled());
  EXPECT_TRUE((*diffs)[0]);   // first fire flips the bit
  EXPECT_TRUE((*diffs)[1]);   // quiet call leaves it corrupted
  EXPECT_FALSE((*diffs)[2]);  // second fire hits the SAME bit: flips it back
  EXPECT_FALSE((*diffs)[3]);
}

TEST(Injector, SpecDescribeMentionsCoordinates) {
  FaultSpec spec;
  spec.site_id = 0xAB;
  spec.rank = 7;
  spec.invocation = 3;
  spec.param = mpi::Param::Op;
  spec.trial = 11;
  const auto text = spec.describe();
  EXPECT_NE(text.find("rank=7"), std::string::npos);
  EXPECT_NE(text.find("inv=3"), std::string::npos);
  EXPECT_NE(text.find("op"), std::string::npos);
}

TEST(Outcome, ClassificationTable) {
  mpi::WorldResult clean;
  EXPECT_EQ(classify(clean, 5, 5), Outcome::Success);
  EXPECT_EQ(classify(clean, 5, 6), Outcome::WrongAns);

  mpi::WorldResult failed;
  failed.event = mpi::CapturedEvent{mpi::EventType::AppDetected, 0, "x", {}};
  EXPECT_EQ(classify(failed, 5, 5), Outcome::AppDetected);
  failed.event->type = mpi::EventType::MpiErr;
  EXPECT_EQ(classify(failed, 5, 5), Outcome::MpiErr);
  failed.event->type = mpi::EventType::SegFault;
  EXPECT_EQ(classify(failed, 5, 5), Outcome::SegFault);
  failed.event->type = mpi::EventType::Timeout;
  EXPECT_EQ(classify(failed, 5, 5), Outcome::InfLoop);
}

TEST(Outcome, ErrorPredicateMatchesPaper) {
  EXPECT_FALSE(is_error(Outcome::Success));
  for (auto o : {Outcome::AppDetected, Outcome::MpiErr, Outcome::SegFault,
                 Outcome::WrongAns, Outcome::InfLoop}) {
    EXPECT_TRUE(is_error(o));
  }
}

TEST(Outcome, NamesMatchTableOne) {
  const auto& names = outcome_names();
  ASSERT_EQ(names.size(), kNumOutcomes);
  EXPECT_EQ(names[0], "SUCCESS");
  EXPECT_EQ(names[1], "APP_DETECTED");
  EXPECT_EQ(names[2], "MPI_ERR");
  EXPECT_EQ(names[3], "SEG_FAULT");
  EXPECT_EQ(names[4], "WRONG_ANS");
  EXPECT_EQ(names[5], "INF_LOOP");
}

}  // namespace
}  // namespace fastfit::inject

// Outcome classification: all six Table-I responses, plus the World::run
// capture paths (bad_alloc → SEG_FAULT, length_error → SEG_FAULT) that
// turn resource-exhaustion crashes into contained, classifiable events.

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <new>
#include <stdexcept>

#include "inject/outcome.hpp"
#include "minimpi/mpi.hpp"
#include "minimpi/world.hpp"

namespace fastfit::inject {
namespace {

mpi::WorldResult event_result(mpi::EventType type) {
  mpi::WorldResult result;
  result.event = mpi::CapturedEvent{type, 0, "synthetic", std::nullopt};
  return result;
}

TEST(Classify, CleanMatchingDigestIsSuccess) {
  EXPECT_EQ(classify(mpi::WorldResult{}, 42, 42), Outcome::Success);
}

TEST(Classify, CleanDivergedDigestIsWrongAns) {
  EXPECT_EQ(classify(mpi::WorldResult{}, 41, 42), Outcome::WrongAns);
}

TEST(Classify, AppDetectedEvent) {
  EXPECT_EQ(classify(event_result(mpi::EventType::AppDetected), 42, 42),
            Outcome::AppDetected);
}

TEST(Classify, MpiErrEvent) {
  EXPECT_EQ(classify(event_result(mpi::EventType::MpiErr), 42, 42),
            Outcome::MpiErr);
}

TEST(Classify, SegFaultEvent) {
  EXPECT_EQ(classify(event_result(mpi::EventType::SegFault), 42, 42),
            Outcome::SegFault);
}

TEST(Classify, TimeoutEventIsInfLoop) {
  EXPECT_EQ(classify(event_result(mpi::EventType::Timeout), 42, 42),
            Outcome::InfLoop);
}

TEST(Classify, EventWinsOverDigestComparison) {
  // A faulted run's digest is meaningless; the event decides.
  EXPECT_EQ(classify(event_result(mpi::EventType::MpiErr), 41, 42),
            Outcome::MpiErr);
}

mpi::WorldOptions two_ranks() {
  mpi::WorldOptions opts;
  opts.nranks = 2;
  opts.watchdog = std::chrono::milliseconds(5000);
  return opts;
}

TEST(WorldCapture, BadAllocBecomesSegFault) {
  // A corrupted size that exhausts memory is indistinguishable from a
  // crash on a real cluster (the OOM killer): World::run must contain it
  // as a SegFault event, never let it escape the trial.
  mpi::World world(two_ranks());
  const auto result = world.run([](mpi::Mpi& mpi) {
    if (mpi.rank() == 0) throw std::bad_alloc();
  });
  ASSERT_TRUE(result.event.has_value());
  EXPECT_EQ(result.event->type, mpi::EventType::SegFault);
  EXPECT_THAT(result.event->message,
              ::testing::HasSubstr("allocation failure (OOM kill)"));
  EXPECT_EQ(classify(result, 0, 42), Outcome::SegFault);
}

TEST(WorldCapture, LengthErrorBecomesSegFault) {
  // vector::resize with an absurd (bit-flipped) count throws length_error
  // before allocating; same containment as bad_alloc.
  mpi::World world(two_ranks());
  const auto result = world.run([](mpi::Mpi& mpi) {
    if (mpi.rank() == 1) throw std::length_error("absurd resize");
  });
  ASSERT_TRUE(result.event.has_value());
  EXPECT_EQ(result.event->type, mpi::EventType::SegFault);
  EXPECT_THAT(result.event->message,
              ::testing::HasSubstr("absurd allocation request"));
  EXPECT_EQ(result.event->rank, 1);
  EXPECT_EQ(classify(result, 0, 42), Outcome::SegFault);
}

TEST(WorldCapture, InternalErrorIsRethrownToTheCaller) {
  // Non-fault exceptions are library bugs or machine trouble: World::run
  // rethrows them (the campaign's trial guard retries/quarantines above).
  mpi::World world(two_ranks());
  EXPECT_THROW(world.run([](mpi::Mpi& mpi) {
                 if (mpi.rank() == 0) {
                   throw std::runtime_error("internal flake");
                 }
               }),
               std::runtime_error);
}

}  // namespace
}  // namespace fastfit::inject

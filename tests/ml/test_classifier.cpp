// The pluggable-classifier surface: factory, baselines, and the claim
// that the learning machinery is not tied to the random forest.

#include "ml/classifier.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace fastfit::ml {
namespace {

FeatureVec fv(double type, double phase, double errhal, double ninv,
              double depth, double nstack) {
  return {type, phase, errhal, ninv, depth, nstack};
}

Dataset structured(std::size_t n, std::uint64_t seed) {
  Dataset data(3);
  RngStream rng(seed, "clf-data");
  for (std::size_t i = 0; i < n; ++i) {
    const double errhal = rng.bernoulli(0.4) ? 1.0 : 0.0;
    const double depth = 1.0 + rng.index(6);
    std::size_t label = errhal > 0.5 ? 2 : (depth >= 4 ? 1 : 0);
    if (rng.bernoulli(0.05)) label = rng.index(3);
    data.add(fv(rng.index(5), rng.index(4), errhal, 1.0 + rng.index(50),
                depth, 1.0 + rng.index(4)),
             label);
  }
  return data;
}

TEST(Classifier, FactoryKnowsAllNames) {
  ClassifierConfig config;
  for (const auto& name : classifier_names()) {
    const auto model = make_classifier(name, config);
    EXPECT_EQ(model->name(), name);
  }
  EXPECT_THROW(make_classifier("svm", config), ConfigError);
}

TEST(Classifier, UntrainedModelsRefuseToPredict) {
  ClassifierConfig config;
  for (const auto& name : {"random-forest", "knn", "naive-bayes"}) {
    const auto model = make_classifier(name, config);
    EXPECT_THROW(model->predict(fv(0, 0, 0, 0, 0, 0)), InternalError)
        << name;
  }
}

class ModelSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelSweep, BeatsMajorityOnStructuredData) {
  const auto data = structured(600, 11);
  const auto [train, test] = data.split(0.6, 3, 0);
  ClassifierConfig config;
  config.seed = 5;
  auto model = make_classifier(GetParam(), config);
  model->train(train);
  const auto matrix = evaluate(*model, test);

  auto majority = make_classifier("majority", config);
  majority->train(train);
  const auto baseline = evaluate(*majority, test);

  EXPECT_GT(matrix.accuracy(), baseline.accuracy() + 0.1) << GetParam();
  EXPECT_GT(matrix.accuracy(), 0.7) << GetParam();
}

TEST_P(ModelSweep, RetrainReplacesTheModel) {
  ClassifierConfig config;
  // Two pure datasets with different constant labels: after retraining,
  // predictions must follow the new data.
  Dataset zeros(2);
  Dataset ones(2);
  for (int i = 0; i < 20; ++i) {
    zeros.add(fv(i, 0, 0, 0, 0, 0), 0);
    ones.add(fv(i, 0, 0, 0, 0, 0), 1);
  }
  auto model = make_classifier(GetParam(), config);
  model->train(zeros);
  EXPECT_EQ(model->predict(fv(3, 0, 0, 0, 0, 0)), 0u);
  model->train(ones);
  EXPECT_EQ(model->predict(fv(3, 0, 0, 0, 0, 0)), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelSweep,
                         ::testing::Values("random-forest", "knn",
                                           "naive-bayes"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Classifier, KnnHandlesScaleImbalance) {
  // One informative binary feature next to a huge-scale noise feature:
  // without normalization the noise would drown the signal.
  Dataset data(2);
  RngStream rng(7, "scale");
  for (int i = 0; i < 300; ++i) {
    const double errhal = rng.bernoulli(0.5) ? 1.0 : 0.0;
    data.add(fv(0, 0, errhal, rng.uniform() * 1e6, 0, 0),
             errhal > 0.5 ? 1 : 0);
  }
  const auto [train, test] = data.split(0.5, 9, 0);
  ClassifierConfig config;
  config.k = 3;
  auto model = make_classifier("knn", config);
  model->train(train);
  EXPECT_GT(evaluate(*model, test).accuracy(), 0.95);
}

TEST(Classifier, NaiveBayesRecoversGaussianClasses) {
  Dataset data(2);
  RngStream rng(13, "nb");
  for (int i = 0; i < 500; ++i) {
    const bool high = rng.bernoulli(0.5);
    data.add(fv(0, 0, 0, 0, (high ? 8.0 : 2.0) + rng.normal(), 0),
             high ? 1 : 0);
  }
  const auto [train, test] = data.split(0.5, 17, 0);
  auto model = make_classifier("naive-bayes", ClassifierConfig{});
  model->train(train);
  EXPECT_GT(evaluate(*model, test).accuracy(), 0.95);
}

TEST(Classifier, RepeatedSplitEvalWorksForEveryModel) {
  const auto data = structured(200, 21);
  for (const auto& name : classifier_names()) {
    const auto rounds =
        repeated_random_split_eval(name, ClassifierConfig{}, data, 3);
    ASSERT_EQ(rounds.size(), 3u) << name;
    for (const auto& matrix : rounds) EXPECT_EQ(matrix.total(), 100u);
  }
}

TEST(Classifier, MajorityPredictsTrainingMode) {
  Dataset data(3);
  for (int i = 0; i < 5; ++i) data.add(fv(i, 0, 0, 0, 0, 0), 2);
  data.add(fv(9, 0, 0, 0, 0, 0), 0);
  auto model = make_classifier("majority", ClassifierConfig{});
  model->train(data);
  EXPECT_EQ(model->predict(fv(123, 4, 5, 6, 7, 8)), 2u);
}

}  // namespace
}  // namespace fastfit::ml

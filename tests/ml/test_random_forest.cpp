#include "ml/random_forest.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace fastfit::ml {
namespace {

FeatureVec fv(double type, double phase, double errhal, double ninv,
              double depth, double nstack) {
  return {type, phase, errhal, ninv, depth, nstack};
}

/// A synthetic sensitivity-like dataset: the label depends on ErrHal and
/// StackDep with noise — the structure the paper's correlations suggest.
Dataset synthetic(std::size_t n, std::uint64_t seed) {
  Dataset data(3);
  RngStream rng(seed, "synthetic");
  for (std::size_t i = 0; i < n; ++i) {
    const double errhal = rng.bernoulli(0.4) ? 1.0 : 0.0;
    const double depth = 1.0 + rng.index(6);
    const double ninv = 1.0 + rng.index(100);
    const double type = rng.index(5);
    const double phase = rng.index(4);
    const double nstack = 1.0 + rng.index(4);
    std::size_t label;
    if (errhal > 0.5) {
      label = 2;
    } else if (depth >= 4) {
      label = 1;
    } else {
      label = 0;
    }
    if (rng.bernoulli(0.08)) label = rng.index(3);  // label noise
    data.add(fv(type, phase, errhal, ninv, depth, nstack), label);
  }
  return data;
}

TEST(RandomForest, BeatsMajorityBaselineOnStructuredData) {
  const auto data = synthetic(600, 7);
  const auto [train, test] = data.split(0.6, 7, 0);
  ForestConfig config;
  config.n_trees = 32;
  config.seed = 5;
  const auto forest = RandomForest::train(train, config);
  const auto matrix = evaluate(forest, test);
  EXPECT_GT(matrix.accuracy(), matrix.majority_baseline() + 0.15);
  EXPECT_GT(matrix.accuracy(), 0.75);
}

TEST(RandomForest, DeterministicGivenSeed) {
  const auto data = synthetic(200, 3);
  ForestConfig config;
  config.n_trees = 8;
  config.seed = 99;
  const auto f1 = RandomForest::train(data, config);
  const auto f2 = RandomForest::train(data, config);
  RngStream rng(1, "probe");
  for (int i = 0; i < 50; ++i) {
    const auto x = fv(rng.index(5), rng.index(4), rng.bernoulli(0.5),
                      rng.index(100), rng.index(8), rng.index(4));
    EXPECT_EQ(f1.predict(x), f2.predict(x));
  }
}

TEST(RandomForest, FeatureImportanceIdentifiesDrivers) {
  const auto data = synthetic(800, 13);
  ForestConfig config;
  config.n_trees = 48;
  config.seed = 21;
  const auto forest = RandomForest::train(data, config);
  const auto importance = forest.feature_importance();
  double sum = 0.0;
  for (double v : importance) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // ErrHal and StackDep generate the labels; each must dominate the pure
  // noise features.
  const double errhal = importance[static_cast<std::size_t>(Feature::ErrHal)];
  const double depth = importance[static_cast<std::size_t>(Feature::StackDep)];
  const double type = importance[static_cast<std::size_t>(Feature::Type)];
  const double phase = importance[static_cast<std::size_t>(Feature::Phase)];
  EXPECT_GT(errhal, type);
  EXPECT_GT(errhal, phase);
  EXPECT_GT(depth, type);
  EXPECT_GT(depth, phase);
}

TEST(RandomForest, MajorityVoteOverridesOutlierTrees) {
  const auto data = synthetic(300, 5);
  ForestConfig config;
  config.n_trees = 33;
  config.seed = 8;
  const auto forest = RandomForest::train(data, config);
  EXPECT_EQ(forest.tree_count(), 33u);
  // Vote agrees with the plurality of member trees on every probe.
  RngStream rng(2, "probe");
  for (int i = 0; i < 20; ++i) {
    const auto x = fv(rng.index(5), rng.index(4), rng.bernoulli(0.5),
                      rng.index(100), rng.index(8), rng.index(4));
    std::vector<int> votes(3, 0);
    for (std::size_t t = 0; t < forest.tree_count(); ++t) {
      ++votes[forest.tree(t).predict(x)];
    }
    const auto winner = static_cast<std::size_t>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
    EXPECT_EQ(forest.predict(x), winner);
  }
}

TEST(RandomForest, RepeatedRandomSplitEvalProducesRounds) {
  const auto data = synthetic(300, 17);
  ForestConfig config;
  config.n_trees = 16;
  config.seed = 4;
  const auto rounds = repeated_random_split_eval(data, config, 5);
  ASSERT_EQ(rounds.size(), 5u);
  for (const auto& matrix : rounds) {
    EXPECT_EQ(matrix.total(), 150u);
    EXPECT_GT(matrix.accuracy(), 0.5);
  }
}

TEST(RandomForest, RejectsDegenerateInputs) {
  Dataset empty(2);
  EXPECT_THROW(RandomForest::train(empty, ForestConfig{}), InternalError);
  Dataset one(2);
  one.add(fv(0, 0, 0, 0, 0, 0), 0);
  ForestConfig no_trees;
  no_trees.n_trees = 0;
  EXPECT_THROW(RandomForest::train(one, no_trees), InternalError);
}

TEST(RandomForest, SingleSampleDatasetPredictsThatLabel) {
  Dataset one(4);
  one.add(fv(1, 2, 3, 4, 5, 6), 3);
  const auto forest = RandomForest::train(one, ForestConfig{});
  EXPECT_EQ(forest.predict(fv(0, 0, 0, 0, 0, 0)), 3u);
}

TEST(RandomForest, RenderTreeProducesFigFourStyleText) {
  const auto data = synthetic(200, 31);
  ForestConfig config;
  config.n_trees = 4;
  config.seed = 2;
  const auto forest = RandomForest::train(data, config);
  const auto text =
      forest.render_tree(0, {"low", "med", "high"});
  EXPECT_FALSE(text.empty());
  EXPECT_NE(text.find("->"), std::string::npos);
}

}  // namespace
}  // namespace fastfit::ml

#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace fastfit::ml {
namespace {

FeatureVec fv(double type, double phase, double errhal, double ninv,
              double depth, double nstack) {
  return {type, phase, errhal, ninv, depth, nstack};
}

TEST(DecisionTree, FitsTriviallySeparableData) {
  Dataset data(2);
  for (int i = 0; i < 20; ++i) {
    data.add(fv(0, 0, 0, i, 1, 1), 0);
    data.add(fv(0, 0, 1, i, 1, 1), 1);  // label == errhal flag
  }
  const auto tree = DecisionTree::fit(data, {}, TreeConfig{});
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(tree.predict(fv(0, 0, 0, i, 1, 1)), 0u);
    EXPECT_EQ(tree.predict(fv(0, 0, 1, i, 1, 1)), 1u);
  }
  // All impurity decrease should land on the ErrHal feature.
  const auto& imp = tree.impurity_decrease();
  EXPECT_GT(imp[static_cast<std::size_t>(Feature::ErrHal)], 0.0);
  for (std::size_t f = 0; f < kNumFeatures; ++f) {
    if (f != static_cast<std::size_t>(Feature::ErrHal)) {
      EXPECT_EQ(imp[f], 0.0) << to_string(static_cast<Feature>(f));
    }
  }
}

TEST(DecisionTree, PureDatasetYieldsSingleLeaf) {
  Dataset data(3);
  for (int i = 0; i < 10; ++i) data.add(fv(i, 0, 0, 0, 0, 0), 2);
  const auto tree = DecisionTree::fit(data, {}, TreeConfig{});
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict(fv(99, 9, 9, 9, 9, 9)), 2u);
}

TEST(DecisionTree, MaxDepthRespected) {
  Dataset data(2);
  RngStream rng(3, "tree");
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform();
    data.add(fv(x, rng.uniform(), 0, 0, 0, 0), x > 0.5 ? 1 : 0);
  }
  TreeConfig config;
  config.max_depth = 2;
  const auto tree = DecisionTree::fit(data, {}, config);
  EXPECT_LE(tree.depth(), 2u);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  Dataset data(2);
  data.add(fv(0, 0, 0, 0, 0, 0), 0);
  data.add(fv(1, 0, 0, 0, 0, 0), 1);
  TreeConfig config;
  config.min_samples_leaf = 2;
  const auto tree = DecisionTree::fit(data, {}, config);
  // Cannot split without violating the leaf minimum -> single leaf.
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(DecisionTree, GreedyCartCannotSplitPureXor) {
  // A property of greedy CART: on perfectly balanced XOR data every single
  // split has zero Gini gain, so no split fires and a single leaf remains.
  // (The forest compensates through bootstrap imbalance in practice.)
  Dataset data(2);
  for (int i = 0; i < 25; ++i) {
    data.add(fv(0, 0, 0, 0, 0, 0), 0);
    data.add(fv(1, 1, 0, 0, 0, 0), 0);
    data.add(fv(0, 1, 0, 0, 0, 0), 1);
    data.add(fv(1, 0, 0, 0, 0, 0), 1);
  }
  const auto tree = DecisionTree::fit(data, {}, TreeConfig{});
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(DecisionTree, ImbalancedXorIsLearnable) {
  // Break the tie and the greedy splitter finds the interaction.
  Dataset data(2);
  for (int i = 0; i < 30; ++i) data.add(fv(0, 0, 0, 0, 0, 0), 0);
  for (int i = 0; i < 25; ++i) data.add(fv(1, 1, 0, 0, 0, 0), 0);
  for (int i = 0; i < 25; ++i) data.add(fv(0, 1, 0, 0, 0, 0), 1);
  for (int i = 0; i < 25; ++i) data.add(fv(1, 0, 0, 0, 0, 0), 1);
  const auto tree = DecisionTree::fit(data, {}, TreeConfig{});
  EXPECT_EQ(tree.predict(fv(0, 0, 0, 0, 0, 0)), 0u);
  EXPECT_EQ(tree.predict(fv(1, 1, 0, 0, 0, 0)), 0u);
  EXPECT_EQ(tree.predict(fv(0, 1, 0, 0, 0, 0)), 1u);
  EXPECT_EQ(tree.predict(fv(1, 0, 0, 0, 0, 0)), 1u);
  EXPECT_GE(tree.depth(), 2u);
}

TEST(DecisionTree, RenderShowsFeatureNamesAndClasses) {
  Dataset data(2);
  for (int i = 0; i < 10; ++i) {
    data.add(fv(0, 0, 0, 2, 0, 0), 0);
    data.add(fv(0, 0, 0, 9, 0, 0), 1);
  }
  const auto tree = DecisionTree::fit(data, {}, TreeConfig{});
  const auto text = tree.render({"low", "high"});
  EXPECT_NE(text.find("nInv"), std::string::npos);
  EXPECT_NE(text.find("low"), std::string::npos);
  EXPECT_NE(text.find("high"), std::string::npos);
}

TEST(DecisionTree, EmptyDatasetRejected) {
  Dataset data(2);
  EXPECT_THROW(DecisionTree::fit(data, {}, TreeConfig{}), InternalError);
}

TEST(DecisionTree, IndexSubsetRestrictsTraining) {
  Dataset data(2);
  data.add(fv(0, 0, 0, 0, 0, 0), 0);
  data.add(fv(1, 0, 0, 0, 0, 0), 1);
  data.add(fv(2, 0, 0, 0, 0, 0), 1);
  // Train on samples {0, 0, 0} only: everything predicts label 0.
  const auto tree = DecisionTree::fit(data, {0, 0, 0}, TreeConfig{});
  EXPECT_EQ(tree.predict(fv(2, 0, 0, 0, 0, 0)), 0u);
}

TEST(Dataset, SplitPreservesAllSamples) {
  Dataset data(2);
  for (int i = 0; i < 100; ++i) data.add(fv(i, 0, 0, 0, 0, 0), i % 2);
  const auto [train, test] = data.split(0.7, 11, 0);
  EXPECT_EQ(train.size(), 70u);
  EXPECT_EQ(test.size(), 30u);
}

TEST(Dataset, SplitRoundsDiffer) {
  Dataset data(2);
  for (int i = 0; i < 50; ++i) data.add(fv(i, 0, 0, 0, 0, 0), i % 2);
  const auto [t0, v0] = data.split(0.5, 11, 0);
  const auto [t1, v1] = data.split(0.5, 11, 1);
  bool different = false;
  for (std::size_t i = 0; i < t0.size() && !different; ++i) {
    different = t0[i].x != t1[i].x;
  }
  EXPECT_TRUE(different);
}

TEST(Dataset, MajorityLabel) {
  Dataset data(3);
  data.add(fv(0, 0, 0, 0, 0, 0), 2);
  data.add(fv(0, 0, 0, 0, 0, 0), 2);
  data.add(fv(0, 0, 0, 0, 0, 0), 1);
  EXPECT_EQ(data.majority_label(), 2u);
  EXPECT_THROW(data.add(fv(0, 0, 0, 0, 0, 0), 3), InternalError);
}

}  // namespace
}  // namespace fastfit::ml

#include "pmpi/chain.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "minimpi/mpi.hpp"
#include "support/error.hpp"

namespace fastfit::pmpi {
namespace {

using namespace std::chrono_literals;

/// Appends a token on enter/exit so ordering is observable.
class Tagger : public mpi::ToolHooks {
 public:
  Tagger(std::vector<std::string>& log, std::mutex& mutex, std::string name)
      : log_(&log), mutex_(&mutex), name_(std::move(name)) {}
  void on_enter(mpi::CollectiveCall&, mpi::Mpi&) override {
    std::lock_guard lock(*mutex_);
    log_->push_back(name_ + ":enter");
  }
  void on_exit(const mpi::CollectiveCall&, mpi::Mpi&) override {
    std::lock_guard lock(*mutex_);
    log_->push_back(name_ + ":exit");
  }

 private:
  std::vector<std::string>* log_;
  std::mutex* mutex_;
  std::string name_;
};

TEST(HookChain, EnterInOrderExitReversed) {
  std::vector<std::string> log;
  std::mutex mutex;
  Tagger profiler(log, mutex, "profiler");
  Tagger injector(log, mutex, "injector");
  HookChain chain;
  chain.add(&profiler);
  chain.add(&injector);
  EXPECT_EQ(chain.size(), 2u);

  mpi::WorldOptions opts;
  opts.nranks = 1;
  opts.watchdog = 2000ms;
  mpi::World world(opts);
  world.set_tools(&chain);
  world.run([](mpi::Mpi& mpi) { mpi.barrier(); });

  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "profiler:enter");
  EXPECT_EQ(log[1], "injector:enter");
  EXPECT_EQ(log[2], "injector:exit");
  EXPECT_EQ(log[3], "profiler:exit");
}

TEST(HookChain, EmptyChainIsTransparent) {
  HookChain chain;
  mpi::WorldOptions opts;
  opts.nranks = 2;
  opts.watchdog = 2000ms;
  mpi::World world(opts);
  world.set_tools(&chain);
  EXPECT_TRUE(world.run([](mpi::Mpi& mpi) {
    const auto v = mpi.allreduce_value<std::int32_t>(1, mpi::kSum);
    EXPECT_EQ(v, 2);
  }).clean());
}

TEST(HookChain, NullToolRejected) {
  HookChain chain;
  EXPECT_THROW(chain.add(nullptr), InternalError);
}

TEST(HookChain, EarlierToolsSeePristineCallLaterToolsSeeMutations) {
  // First tool records, second corrupts: the record must predate the
  // corruption; a third tool added after must see the corrupted value.
  struct Recorder : mpi::ToolHooks {
    void on_enter(mpi::CollectiveCall& call, mpi::Mpi&) override {
      seen.store(call.count);
    }
    void on_exit(const mpi::CollectiveCall&, mpi::Mpi&) override {}
    std::atomic<std::int32_t> seen{-1};
  };
  struct Corruptor : mpi::ToolHooks {
    void on_enter(mpi::CollectiveCall& call, mpi::Mpi&) override {
      call.count = 0;
    }
    void on_exit(const mpi::CollectiveCall&, mpi::Mpi&) override {}
  };
  Recorder before;
  Corruptor corruptor;
  Recorder after;
  HookChain chain;
  chain.add(&before);
  chain.add(&corruptor);
  chain.add(&after);

  mpi::WorldOptions opts;
  opts.nranks = 1;
  opts.watchdog = 2000ms;
  mpi::World world(opts);
  world.set_tools(&chain);
  world.run([](mpi::Mpi& mpi) {
    mpi::RegisteredBuffer<double> buf(mpi.registry(), 4, 1.0);
    mpi.allreduce(buf.data(), buf.data(), 4, mpi::kDouble, mpi::kSum);
  });
  EXPECT_EQ(before.seen.load(), 4);
  EXPECT_EQ(after.seen.load(), 0);
}

}  // namespace
}  // namespace fastfit::pmpi

#include "trace/rank_context.hpp"

#include <gtest/gtest.h>

#include "trace/similarity.hpp"

namespace fastfit::trace {
namespace {

TEST(RankContext, FunctionScopeFeedsStackAndGraph) {
  RankContext ctx;
  {
    FunctionScope outer(ctx, "solve");
    EXPECT_EQ(ctx.stack().depth(), 1u);
    {
      FunctionScope inner(ctx, "smooth");
      EXPECT_EQ(ctx.stack().depth(), 2u);
    }
  }
  EXPECT_EQ(ctx.stack().depth(), 0u);
  EXPECT_EQ(ctx.graph().calls("main", "solve"), 1u);
  EXPECT_EQ(ctx.graph().calls("solve", "smooth"), 1u);
}

TEST(RankContext, ErrorHandlingScopeNests) {
  RankContext ctx;
  EXPECT_FALSE(ctx.in_error_handler());
  {
    ErrorHandlingScope outer(ctx);
    EXPECT_TRUE(ctx.in_error_handler());
    {
      ErrorHandlingScope inner(ctx);
      EXPECT_TRUE(ctx.in_error_handler());
    }
    EXPECT_TRUE(ctx.in_error_handler());
  }
  EXPECT_FALSE(ctx.in_error_handler());
}

TEST(RankContext, PhaseTransitions) {
  RankContext ctx;
  EXPECT_EQ(ctx.phase(), ExecPhase::Init);
  ctx.set_phase(ExecPhase::Compute);
  EXPECT_EQ(ctx.phase(), ExecPhase::Compute);
  EXPECT_STREQ(to_string(ExecPhase::Input), "input");
  EXPECT_STREQ(to_string(ExecPhase::End), "end");
}

TEST(Similarity, IdenticalContextsCollapse) {
  ContextRegistry reg(4);
  for (int r = 0; r < 4; ++r) {
    auto& ctx = reg.of(r);
    FunctionScope scope(ctx, "work");
    ctx.comm_trace().record(
        CommEvent{mpi::CollectiveKind::Allreduce, 42, 64, false});
  }
  const auto classes = equivalence_classes(reg);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].ranks, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(classes[0].representative(), 0);
}

TEST(Similarity, RootRoleSplitsClasses) {
  ContextRegistry reg(4);
  for (int r = 0; r < 4; ++r) {
    auto& ctx = reg.of(r);
    FunctionScope scope(ctx, "work");
    ctx.comm_trace().record(
        CommEvent{mpi::CollectiveKind::Reduce, 42, 64, r == 0});
  }
  const auto classes = equivalence_classes(reg);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].ranks, (std::vector<int>{0}));
  EXPECT_EQ(classes[1].ranks, (std::vector<int>{1, 2, 3}));
}

TEST(Similarity, CallGraphDifferenceSplitsClasses) {
  ContextRegistry reg(3);
  for (int r = 0; r < 3; ++r) {
    auto& ctx = reg.of(r);
    FunctionScope scope(ctx, r == 1 ? "special_path" : "work");
  }
  const auto classes = equivalence_classes(reg);
  ASSERT_EQ(classes.size(), 2u);
}

TEST(Similarity, CommTraceOrderMatters) {
  ContextRegistry reg(2);
  reg.of(0).comm_trace().record(
      CommEvent{mpi::CollectiveKind::Bcast, 1, 8, false});
  reg.of(0).comm_trace().record(
      CommEvent{mpi::CollectiveKind::Barrier, 2, 0, false});
  reg.of(1).comm_trace().record(
      CommEvent{mpi::CollectiveKind::Barrier, 2, 0, false});
  reg.of(1).comm_trace().record(
      CommEvent{mpi::CollectiveKind::Bcast, 1, 8, false});
  EXPECT_EQ(equivalence_classes(reg).size(), 2u);
}

}  // namespace
}  // namespace fastfit::trace

#include "trace/shadow_stack.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace fastfit::trace {
namespace {

TEST(ShadowStack, EmptyStackIdentity) {
  ShadowStack stack;
  EXPECT_EQ(stack.id(), empty_stack_id());
  EXPECT_EQ(stack.depth(), 0u);
  EXPECT_EQ(stack.innermost(), "main");
}

TEST(ShadowStack, EnterLeaveRestoresIdentity) {
  ShadowStack stack;
  const StackId before = stack.id();
  stack.enter("solve");
  EXPECT_NE(stack.id(), before);
  EXPECT_EQ(stack.depth(), 1u);
  EXPECT_EQ(stack.innermost(), "solve");
  stack.leave();
  EXPECT_EQ(stack.id(), before);
}

TEST(ShadowStack, SameFrameSequenceSameId) {
  ShadowStack a, b;
  for (const char* fn : {"main_loop", "compute", "reduce_local"}) {
    a.enter(fn);
    b.enter(fn);
  }
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.frames(), b.frames());
}

TEST(ShadowStack, OrderMattersForIdentity) {
  ShadowStack a, b;
  a.enter("f");
  a.enter("g");
  b.enter("g");
  b.enter("f");
  EXPECT_NE(a.id(), b.id());
}

TEST(ShadowStack, DepthMattersForIdentity) {
  // [f] vs [f, f]: recursion must change the identity.
  ShadowStack a, b;
  a.enter("f");
  b.enter("f");
  b.enter("f");
  EXPECT_NE(a.id(), b.id());
}

TEST(ShadowStack, ReenteringProducesSameIdAsBefore) {
  ShadowStack stack;
  stack.enter("step");
  const StackId first = stack.id();
  stack.leave();
  stack.enter("step");
  EXPECT_EQ(stack.id(), first);
}

TEST(ShadowStack, UnderflowThrows) {
  ShadowStack stack;
  EXPECT_THROW(stack.leave(), InternalError);
}

TEST(ShadowStack, TraceScopeIsExceptionSafe) {
  ShadowStack stack;
  try {
    TraceScope scope(stack, "faulty");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(stack.depth(), 0u);
}

TEST(ShadowStack, FramesOutermostFirst) {
  ShadowStack stack;
  stack.enter("outer");
  stack.enter("inner");
  const auto frames = stack.frames();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "outer");
  EXPECT_EQ(frames[1], "inner");
}

}  // namespace
}  // namespace fastfit::trace

#include "trace/call_graph.hpp"

#include <gtest/gtest.h>

namespace fastfit::trace {
namespace {

TEST(CallGraph, RecordsEdgeCounts) {
  CallGraph g;
  g.add_call("main", "solve");
  g.add_call("main", "solve");
  g.add_call("solve", "smooth");
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.calls("main", "solve"), 2u);
  EXPECT_EQ(g.calls("solve", "smooth"), 1u);
  EXPECT_EQ(g.calls("main", "smooth"), 0u);
}

TEST(CallGraph, EqualGraphsEqualFingerprints) {
  CallGraph a, b;
  for (auto* g : {&a, &b}) {
    g->add_call("main", "f");
    g->add_call("f", "g");
    g->add_call("f", "g");
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(CallGraph, CountsAffectFingerprint) {
  CallGraph a, b;
  a.add_call("main", "f");
  b.add_call("main", "f");
  b.add_call("main", "f");
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(CallGraph, EdgesAffectFingerprint) {
  CallGraph a, b;
  a.add_call("main", "f");
  b.add_call("main", "g");
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(CallGraph, InsertionOrderIrrelevant) {
  CallGraph a, b;
  a.add_call("x", "y");
  a.add_call("p", "q");
  b.add_call("p", "q");
  b.add_call("x", "y");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(CallGraph, DotRenderingContainsEdges) {
  CallGraph g;
  g.add_call("main", "solve");
  const auto dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"main\" -> \"solve\""), std::string::npos);
}

}  // namespace
}  // namespace fastfit::trace

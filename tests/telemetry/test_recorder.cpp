// Telemetry recorder: the enabled/disabled gate, thread-local span
// buffers (including flush-at-thread-exit), metrics instruments, and the
// disabled-mode zero-allocation guarantee (docs/observability.md).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "telemetry/recorder.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter for the zero-allocation test. Sanitizers
// install their own allocator interceptors, so the override (and the test
// that needs it) is compiled out under TSan/ASan.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define FASTFIT_SANITIZED 1
#endif
#if !defined(FASTFIT_SANITIZED) && defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define FASTFIT_SANITIZED 1
#endif
#endif

#ifndef FASTFIT_SANITIZED

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // FASTFIT_SANITIZED

namespace fastfit::telemetry {
namespace {

// The recorder is a process-wide singleton; every test starts from a
// clean, enabled state and leaves the recorder disabled and empty.
class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& rec = Recorder::instance();
    rec.enable();
    rec.reset();
  }
  void TearDown() override {
    auto& rec = Recorder::instance();
    rec.reset();
    rec.disable();
  }
};

TEST_F(RecorderTest, SpanRecordsCompleteEventOnBoundLane) {
  auto& rec = Recorder::instance();
  Recorder::bind_thread(Track::Executor, 3, "executor-3");
  {
    ScopedSpan span("outer");
    span.arg("point", "p0");
    span.arg("trial", "1");
    { ScopedSpan inner("inner"); }
  }
  const auto events = rec.drain_events();
  ASSERT_EQ(events.size(), 2u);
  // Drain sorts by start time: outer opened first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[0].track, Track::Executor);
  EXPECT_EQ(events[0].index, 3);
  EXPECT_EQ(events[0].args, "point=p0; trial=1");
  EXPECT_GE(events[0].dur_us, 0);
  // Nesting: the inner interval lies within the outer interval.
  EXPECT_GE(events[1].start_us, events[0].start_us);
  EXPECT_LE(events[1].start_us + events[1].dur_us,
            events[0].start_us + events[0].dur_us);
  // Restore the default lane for later tests on this thread.
  Recorder::bind_thread(Track::Main, -1, "campaign-main");
}

TEST_F(RecorderTest, SpanConstructedWhileDisabledStaysInert) {
  auto& rec = Recorder::instance();
  rec.disable();
  ScopedSpan span("late");
  EXPECT_FALSE(span.active());
  rec.enable();
  span.finish();  // must not record a half-measured span
  EXPECT_TRUE(rec.drain_events().empty());
}

TEST_F(RecorderTest, InstantEventsCarryTrackAndArgs) {
  auto& rec = Recorder::instance();
  rec.instant("watchdog-fire", Track::Monitor, 0, "rank=2");
  const auto events = rec.drain_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "watchdog-fire");
  EXPECT_LT(events[0].dur_us, 0);  // instant marker
  EXPECT_EQ(events[0].track, Track::Monitor);
  EXPECT_EQ(events[0].args, "rank=2");
}

TEST_F(RecorderTest, ThreadBuffersFlushWhenThreadsExit) {
  auto& rec = Recorder::instance();
  // Short-lived threads (like simulated ranks) record spans and exit
  // before any drain: their events must survive via the retired list.
  std::vector<std::thread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([r] {
      Recorder::bind_thread(Track::Rank, r, "rank-" + std::to_string(r));
      ScopedSpan span("rank-main");
      Recorder::instance().instant("marker", Track::Rank, r);
    });
  }
  for (auto& t : threads) t.join();
  const auto events = rec.drain_events();
  EXPECT_EQ(events.size(), 8u);  // one span + one instant per thread
  int spans = 0;
  for (const auto& event : events) {
    if (std::string_view(event.name) == "rank-main") {
      ++spans;
      EXPECT_EQ(event.track, Track::Rank);
    }
  }
  EXPECT_EQ(spans, 4);
  // All four lanes registered their labels.
  const auto bound = rec.bound_threads();
  int rank_lanes = 0;
  for (const auto& lane : bound) {
    if (lane.track == Track::Rank) ++rank_lanes;
  }
  EXPECT_EQ(rank_lanes, 4);
  // A second drain finds nothing left behind.
  EXPECT_TRUE(rec.drain_events().empty());
}

TEST_F(RecorderTest, ConcurrentSpansFromManyThreadsAllArrive) {
  auto& rec = Recorder::instance();
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([i] {
      Recorder::bind_thread(Track::Executor, i, "w" + std::to_string(i));
      for (int s = 0; s < kSpansPerThread; ++s) {
        ScopedSpan span("work");
        span.arg("i", std::to_string(s));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto events = rec.drain_events();
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  // Drain output is sorted by start time.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_us, events[i].start_us);
  }
}

TEST_F(RecorderTest, CountersGaugesAndHistogramsRoundTrip) {
  auto& rec = Recorder::instance();
  auto& trials = rec.counter("t_total", "help", "outcome=\"SUCCESS\"");
  auto& trials2 = rec.counter("t_total", "help", "outcome=\"SEG_FAULT\"");
  auto& leaked = rec.gauge("t_leaked", "help");
  auto& lat = rec.latency("t_seconds", "help");
  trials.add(3);
  trials2.add();
  leaked.set(5);
  leaked.add(-2);
  lat.observe_us(1500.0);  // 1.5 ms
  lat.observe_us(0.2);     // clamps into the first bucket

  // find-or-create returns the same instrument for the same series.
  EXPECT_EQ(&rec.counter("t_total", "help", "outcome=\"SUCCESS\""), &trials);
  EXPECT_NE(&trials, &trials2);

  const auto snap = rec.metrics();
  EXPECT_EQ(snap.counter_value("t_total", "outcome=\"SUCCESS\""), 3u);
  EXPECT_EQ(snap.counter_value("t_total", "outcome=\"SEG_FAULT\""), 1u);
  EXPECT_EQ(snap.counter_sum("t_total"), 4u);
  EXPECT_EQ(snap.gauge_value("t_leaked"), 3);
  bool found = false;
  for (const auto& h : snap.histograms) {
    if (h.name != "t_seconds") continue;
    found = true;
    EXPECT_EQ(h.data.count, 2u);
    EXPECT_NEAR(h.data.sum_seconds, (1500.0 + 0.2) / 1e6, 1e-12);
    ASSERT_FALSE(h.data.buckets.empty());
    // Cumulative counts are monotone and end at the total.
    std::uint64_t prev = 0;
    for (const auto& [le, cum] : h.data.buckets) {
      EXPECT_GE(cum, prev);
      prev = cum;
    }
    EXPECT_EQ(prev, 2u);
  }
  EXPECT_TRUE(found);
}

TEST_F(RecorderTest, MetricsAreInertWhileDisabled) {
  auto& rec = Recorder::instance();
  auto& c = rec.counter("t_gated", "help");
  auto& g = rec.gauge("t_gated_gauge", "help");
  auto& h = rec.latency("t_gated_seconds", "help");
  rec.disable();
  c.add(7);
  g.set(7);
  h.observe_us(7.0);
  rec.enable();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(rec.metrics().counter_value("t_gated"), 0u);
}

TEST_F(RecorderTest, ResetZeroesMetricsButKeepsReferencesValid) {
  auto& rec = Recorder::instance();
  auto& c = rec.counter("t_reset", "help");
  c.add(9);
  { ScopedSpan span("gone"); }
  rec.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_TRUE(rec.drain_events().empty());
  c.add(2);  // the cached reference still works after reset
  EXPECT_EQ(rec.metrics().counter_value("t_reset"), 2u);
}

TEST_F(RecorderTest, BufferCapDropsAndCountsInsteadOfGrowing) {
  auto& rec = Recorder::instance();
  // Fill the process-wide buffer to the cap, then overflow it: the
  // overflow must be counted in dropped_events, not buffered.
  const std::size_t overflow = 100;
  for (std::size_t i = 0; i < Recorder::kMaxBufferedEvents + overflow; ++i) {
    Event event;
    event.name = "spam";
    rec.record(std::move(event));
  }
  EXPECT_EQ(rec.dropped_events(), overflow);
  const auto events = rec.drain_events();
  EXPECT_EQ(events.size(), Recorder::kMaxBufferedEvents);
  // The metrics snapshot exposes the drop count for the exporters.
  EXPECT_EQ(rec.metrics().dropped_events, overflow);
}

#ifndef FASTFIT_SANITIZED
TEST_F(RecorderTest, DisabledModeAllocatesNothing) {
  auto& rec = Recorder::instance();
  // Pre-create the instruments (registration allocates; the hot path
  // must not) and warm up this thread's buffer handle.
  auto& c = rec.counter("t_zero_alloc", "help");
  auto& g = rec.gauge("t_zero_alloc_gauge", "help");
  auto& h = rec.latency("t_zero_alloc_seconds", "help");
  { ScopedSpan warm("warm"); }
  rec.reset();
  rec.disable();

  const auto before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    ScopedSpan span("hot");
    span.arg("k", "v");
    ScopedSpan explicit_lane("hot2", Track::Journal, 0);
    rec.instant("hot3", Track::Monitor, 0);
    c.add();
    g.set(i);
    h.observe_us(12.0);
  }
  const auto after = g_allocations.load(std::memory_order_relaxed);
  rec.enable();
  EXPECT_EQ(after, before) << "disabled-mode telemetry must not allocate";
}
#endif  // FASTFIT_SANITIZED

}  // namespace
}  // namespace fastfit::telemetry

// Campaign ↔ telemetry integration: span nesting and thread-buffer
// flush under the parallel TrialExecutor, and the replay-identical
// counter contract (a journal-resumed campaign reports the same
// fastfit_trials_total series as the original run).

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "apps/registry.hpp"
#include "core/campaign.hpp"
#include "inject/outcome.hpp"
#include "telemetry/recorder.hpp"

namespace fastfit::core {
namespace {

namespace tel = fastfit::telemetry;

class CampaignTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& rec = tel::Recorder::instance();
    rec.enable();
    rec.reset();
  }
  void TearDown() override {
    auto& rec = tel::Recorder::instance();
    rec.reset();
    rec.disable();
  }
};

CampaignOptions small_options() {
  CampaignOptions opts;
  opts.nranks = 4;
  opts.trials_per_point = 2;
  opts.seed = 424242;
  opts.max_parallel_trials = 2;
  return opts;
}

TEST_F(CampaignTelemetryTest, ExecutorSpansNestPerLaneAndRankBuffersFlush) {
  auto& rec = tel::Recorder::instance();
  tel::Recorder::bind_thread(tel::Track::Main, -1, "campaign-main");
  const auto workload = apps::make_workload("EP");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  const auto& points = campaign.enumeration().points;
  ASSERT_GE(points.size(), 3u);
  const auto results =
      campaign.measure_many(std::span<const InjectionPoint>(points.data(), 3));
  ASSERT_EQ(results.size(), 3u);

  const auto events = rec.drain_events();
  ASSERT_FALSE(events.empty());

  // Tally spans per (track, lane) and check stack discipline: spans on
  // one lane are either disjoint or properly nested. queue-wait spans
  // are excluded — they start at submit time, while the lane's previous
  // trial may still be executing.
  std::map<std::pair<int, int>, std::vector<const tel::Event*>> lanes;
  int trial_spans = 0, world_runs = 0, classifies = 0, queue_waits = 0;
  int rank_spans = 0;
  for (const auto& event : events) {
    const std::string_view name(event.name);
    if (name == "trial") ++trial_spans;
    if (name == "world-run") ++world_runs;
    if (name == "classify") ++classifies;
    if (name == "queue-wait") ++queue_waits;
    if (name == "rank-main") {
      ++rank_spans;
      EXPECT_EQ(event.track, tel::Track::Rank);
    }
    if (event.dur_us < 0 || name == "queue-wait") continue;
    lanes[{static_cast<int>(event.track), event.index}].push_back(&event);
  }
  // 3 points x 2 trials, plus possible watchdog confirmations.
  EXPECT_GE(trial_spans, 6);
  EXPECT_GE(world_runs, 6);
  EXPECT_EQ(classifies, world_runs);  // every injected run classifies
  EXPECT_GE(queue_waits, 6);
  // 4 ranks per world, every world's rank threads exited before the
  // drain: their spans arrived via the retired-buffer path.
  EXPECT_GE(rank_spans, 6 * 4);

  // Trial spans land on executor lanes (pool of 2).
  bool executor_lane_seen = false;
  for (const auto& [lane, spans] : lanes) {
    if (lane.first == static_cast<int>(tel::Track::Executor)) {
      executor_lane_seen = true;
      EXPECT_GE(lane.second, 0);
      EXPECT_LT(lane.second, 2);
    }
  }
  EXPECT_TRUE(executor_lane_seen);

  for (const auto& [lane, spans] : lanes) {
    for (std::size_t a = 0; a < spans.size(); ++a) {
      for (std::size_t b = a + 1; b < spans.size(); ++b) {
        const auto a0 = spans[a]->start_us;
        const auto a1 = a0 + spans[a]->dur_us;
        const auto b0 = spans[b]->start_us;
        const auto b1 = b0 + spans[b]->dur_us;
        const bool partial_overlap = a0 < b0 && b0 < a1 && a1 < b1;
        EXPECT_FALSE(partial_overlap)
            << spans[a]->name << " [" << a0 << "," << a1 << ") and "
            << spans[b]->name << " [" << b0 << "," << b1
            << ") partially overlap on track " << lane.first << " lane "
            << lane.second;
      }
    }
  }

  // Metrics agree with the returned results.
  const auto snap = rec.metrics();
  std::uint64_t recorded = 0;
  for (const auto& r : results) {
    for (const auto c : r.counts) recorded += c;
  }
  EXPECT_EQ(snap.counter_sum("fastfit_trials_total"), recorded);
  EXPECT_GE(snap.counter_value("fastfit_trials_executed_total"), recorded);
  bool hist_found = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "fastfit_trial_seconds") {
      hist_found = true;
      EXPECT_GE(h.data.count, recorded);
    }
  }
  EXPECT_TRUE(hist_found);
}

TEST_F(CampaignTelemetryTest, ReplayedCampaignReportsIdenticalCounterTotals) {
  auto& rec = tel::Recorder::instance();
  const auto workload = apps::make_workload("EP");
  auto opts = small_options();
  opts.trials_per_point = 3;
  const std::string path =
      ::testing::TempDir() + "fastfit_telemetry_replay.jsonl";
  std::remove(path.c_str());

  std::array<std::uint64_t, inject::kNumOutcomes> first{};
  {
    Campaign campaign(*workload, opts);
    campaign.profile();
    const auto& points = campaign.enumeration().points;
    ASSERT_GE(points.size(), 4u);
    campaign.attach_journal(path, JournalMode::Create);
    (void)campaign.measure_many(
        std::span<const InjectionPoint>(points.data(), 4));
    campaign.detach_journal();
    const auto snap = rec.metrics();
    for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
      first[o] = snap.counter_value(
          "fastfit_trials_total",
          "outcome=\"" +
              std::string(inject::to_string(static_cast<inject::Outcome>(o))) +
              '"');
    }
    EXPECT_GT(snap.counter_sum("fastfit_trials_total"), 0u);
    EXPECT_EQ(snap.counter_value("fastfit_trials_replayed_total"), 0u);
  }

  rec.reset();  // fresh registry values for the resumed campaign

  {
    Campaign campaign(*workload, opts);
    campaign.profile();
    const auto& points = campaign.enumeration().points;
    campaign.attach_journal(path, JournalMode::Resume);
    EXPECT_GT(campaign.journal()->loaded_trials(), 0u);
    (void)campaign.measure_many(
        std::span<const InjectionPoint>(points.data(), 4));
    campaign.detach_journal();
    const auto snap = rec.metrics();
    std::uint64_t total = 0;
    for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
      const auto value = snap.counter_value(
          "fastfit_trials_total",
          "outcome=\"" +
              std::string(inject::to_string(static_cast<inject::Outcome>(o))) +
              '"');
      EXPECT_EQ(value, first[o])
          << "outcome "
          << inject::to_string(static_cast<inject::Outcome>(o));
      total += value;
    }
    // Everything was served from the journal; nothing executed fresh.
    EXPECT_EQ(snap.counter_value("fastfit_trials_replayed_total"), total);
    EXPECT_EQ(snap.counter_value("fastfit_trials_executed_total"), 0u);
  }
  std::remove(path.c_str());
}

TEST_F(CampaignTelemetryTest, JournalFlushSpansLandOnJournalTrack) {
  auto& rec = tel::Recorder::instance();
  const auto workload = apps::make_workload("EP");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  const auto& points = campaign.enumeration().points;
  const std::string path =
      ::testing::TempDir() + "fastfit_telemetry_journal.jsonl";
  std::remove(path.c_str());
  campaign.attach_journal(path, JournalMode::Create);
  (void)campaign.measure_many(std::span<const InjectionPoint>(points.data(), 1));
  campaign.detach_journal();
  std::remove(path.c_str());

  bool fsync_span = false;
  for (const auto& event : rec.drain_events()) {
    if (std::string_view(event.name) == "journal-fsync") {
      fsync_span = true;
      EXPECT_EQ(event.track, tel::Track::Journal);
    }
  }
  EXPECT_TRUE(fsync_span);
  EXPECT_GT(rec.metrics().counter_value("fastfit_journal_flushes_total"), 0u);
  EXPECT_GT(rec.metrics().counter_value("fastfit_journal_lines_total"), 0u);
}

}  // namespace
}  // namespace fastfit::core

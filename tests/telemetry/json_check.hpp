#pragma once

// Minimal recursive-descent JSON parser for exporter tests: validates
// syntax and exposes a tiny DOM (objects as string->node maps, arrays as
// vectors). Deliberately tiny — enough to prove the exporters emit
// well-formed documents and to walk traceEvents, not a general library.

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace fastfit::testjson {

struct Node {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Node> array;
  std::map<std::string, Node> object;

  bool has(const std::string& key) const {
    return kind == Kind::Object && object.count(key) > 0;
  }
  const Node& at(const std::string& key) const { return object.at(key); }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  /// Parses the whole document; sets `ok` false (with an error message)
  /// on any syntax violation including trailing garbage.
  Node parse() {
    Node root = value();
    skip_ws();
    if (ok && pos_ != text_.size()) fail("trailing characters");
    return root;
  }

  bool ok = true;
  std::string error;

 private:
  void fail(const std::string& why) {
    if (ok) {
      ok = false;
      error = why + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Node value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return {};
    }
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_node();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  Node object() {
    Node node;
    node.kind = Node::Kind::Object;
    consume('{');
    skip_ws();
    if (consume('}')) return node;
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key");
        return node;
      }
      Node key = string_node();
      if (!ok) return node;
      if (!consume(':')) {
        fail("expected ':'");
        return node;
      }
      node.object[key.string] = value();
      if (!ok) return node;
      if (consume(',')) continue;
      if (consume('}')) return node;
      fail("expected ',' or '}'");
      return node;
    }
  }

  Node array() {
    Node node;
    node.kind = Node::Kind::Array;
    consume('[');
    skip_ws();
    if (consume(']')) return node;
    for (;;) {
      node.array.push_back(value());
      if (!ok) return node;
      if (consume(',')) continue;
      if (consume(']')) return node;
      fail("expected ',' or ']'");
      return node;
    }
  }

  Node string_node() {
    Node node;
    node.kind = Node::Kind::String;
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return node;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': node.string += '"'; break;
          case '\\': node.string += '\\'; break;
          case '/': node.string += '/'; break;
          case 'b': node.string += '\b'; break;
          case 'f': node.string += '\f'; break;
          case 'n': node.string += '\n'; break;
          case 'r': node.string += '\r'; break;
          case 't': node.string += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return node;
            }
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("bad \\u escape");
                return node;
              }
              ++pos_;
            }
            node.string += '?';  // tests never compare escaped content
            break;
          }
          default:
            fail("bad escape");
            return node;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return node;
      } else {
        node.string += c;
      }
    }
    fail("unterminated string");
    return node;
  }

  Node boolean() {
    Node node;
    node.kind = Node::Kind::Bool;
    if (text_.compare(pos_, 4, "true") == 0) {
      node.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return node;
  }

  Node null() {
    Node node;
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
    } else {
      fail("bad literal");
    }
    return node;
  }

  Node number() {
    Node node;
    node.kind = Node::Kind::Number;
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected value");
      return node;
    }
    const std::string lit(text_.substr(start, pos_ - start));
    char* end = nullptr;
    node.number = std::strtod(lit.c_str(), &end);
    if (end != lit.c_str() + lit.size()) fail("bad number: " + lit);
    return node;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline Node parse_or_die(std::string_view text, bool* ok_out = nullptr,
                         std::string* error_out = nullptr) {
  Parser parser(text);
  Node root = parser.parse();
  if (ok_out) *ok_out = parser.ok;
  if (error_out) *error_out = parser.error;
  return root;
}

}  // namespace fastfit::testjson

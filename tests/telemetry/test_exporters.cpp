// Telemetry exporters: Chrome trace-event JSON well-formedness (parsed
// back with a real JSON parser), Prometheus text exposition format, and
// the JSON metrics snapshot.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>

#include "json_check.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/recorder.hpp"

namespace fastfit::telemetry {
namespace {

using testjson::Node;

Event make_span(const char* name, std::int64_t start, std::int64_t dur,
                Track track, int index, std::string args = {}) {
  Event event;
  event.name = name;
  event.start_us = start;
  event.dur_us = dur;
  event.track = track;
  event.index = index;
  event.args = std::move(args);
  return event;
}

class ExportersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& rec = Recorder::instance();
    rec.enable();
    rec.reset();
  }
  void TearDown() override {
    auto& rec = Recorder::instance();
    rec.reset();
    rec.disable();
  }
};

TEST(TraceTid, LanesMapToStableDisjointTids) {
  EXPECT_EQ(trace_tid(Track::Main, -1), 1);
  EXPECT_EQ(trace_tid(Track::Executor, 0), 100);
  EXPECT_EQ(trace_tid(Track::Executor, 7), 107);
  EXPECT_EQ(trace_tid(Track::Rank, 31), 1031);
  EXPECT_EQ(trace_tid(Track::Monitor, 0), 3000);
  EXPECT_EQ(trace_tid(Track::MlLoop, -1), 4000);
  EXPECT_EQ(trace_tid(Track::Journal, 0), 4500);
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST_F(ExportersTest, ChromeTraceIsWellFormedAndCoversAllTracks) {
  // Events across five tracks, one with args needing escaping.
  std::vector<Event> events;
  events.push_back(make_span("trial", 10, 50, Track::Executor, 0,
                             "point=\"bcast\"; trial=1"));
  events.push_back(make_span("rank-main", 12, 40, Track::Rank, 2));
  events.push_back(make_span("journal-fsync", 70, 5, Track::Journal, 0));
  events.push_back(make_span("ml-round", 80, 100, Track::MlLoop, 0));
  events.push_back(
      make_span("watchdog-fire", 95, -1, Track::Monitor, 0));  // instant

  std::vector<ThreadInfo> threads;
  threads.push_back({Track::Main, -1, "campaign-main"});
  threads.push_back({Track::Executor, 0, "executor-0"});

  const std::string trace = to_chrome_trace(events, threads);
  bool ok = false;
  std::string error;
  const Node root = testjson::parse_or_die(trace, &ok, &error);
  ASSERT_TRUE(ok) << error;
  ASSERT_TRUE(root.has("traceEvents"));
  const auto& items = root.at("traceEvents").array;

  std::set<int> named_tids;        // tids with thread_name metadata
  std::set<int> event_tids;       // tids carrying X/i events
  int complete = 0, instants = 0, metadata = 0;
  for (const auto& item : items) {
    ASSERT_EQ(item.kind, Node::Kind::Object);
    ASSERT_TRUE(item.has("ph"));
    const std::string ph = item.at("ph").string;
    const int tid = static_cast<int>(item.at("tid").number);
    if (ph == "M") {
      ++metadata;
      if (item.at("name").string == "thread_name") named_tids.insert(tid);
      continue;
    }
    event_tids.insert(tid);
    if (ph == "X") {
      ++complete;
      EXPECT_TRUE(item.has("ts"));
      EXPECT_TRUE(item.has("dur"));
      EXPECT_GE(item.at("dur").number, 0.0);
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(item.at("s").string, "t");
    } else {
      FAIL() << "unexpected phase " << ph;
    }
  }
  EXPECT_EQ(complete, 4);
  EXPECT_EQ(instants, 1);
  EXPECT_GE(metadata, 2);  // process_name + thread_names + sort indexes

  // Every event lane has a thread_name entry — including lanes that were
  // never explicitly bound (rank/journal/ml/monitor come from events).
  for (const int tid : event_tids) {
    EXPECT_TRUE(named_tids.count(tid)) << "unnamed lane tid " << tid;
  }
  // The acceptance bar: at least 4 distinct track types render.
  std::set<std::string> track_types;
  for (const auto& event : events) {
    track_types.insert(to_string(event.track));
  }
  EXPECT_GE(track_types.size(), 4u);
  EXPECT_GE(event_tids.size(), 5u);

  // The escaped args round-trip through a real JSON parse.
  bool found_args = false;
  for (const auto& item : items) {
    if (item.at("ph").string == "X" && item.at("name").string == "trial") {
      ASSERT_TRUE(item.has("args"));
      EXPECT_EQ(item.at("args").at("detail").string,
                "point=\"bcast\"; trial=1");
      found_args = true;
    }
  }
  EXPECT_TRUE(found_args);
}

TEST_F(ExportersTest, ChromeTraceOfLiveRecorderParses) {
  auto& rec = Recorder::instance();
  Recorder::bind_thread(Track::Main, -1, "campaign-main");
  {
    ScopedSpan span("measure-batch");
    span.arg("points", "3");
    rec.instant("teardown-escalated", Track::Monitor, 0, "straggler=2");
  }
  const std::string trace =
      to_chrome_trace(rec.drain_events(), rec.bound_threads());
  bool ok = false;
  std::string error;
  (void)testjson::parse_or_die(trace, &ok, &error);
  EXPECT_TRUE(ok) << error;
}

// Validates the Prometheus text exposition grammar line by line:
// comments are HELP/TYPE with a known family, samples are
// `name[{labels}] value` with a parseable value.
void check_prometheus(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::string help_family, type_family;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, family;
      ls >> hash >> kind >> family;
      ASSERT_TRUE(kind == "HELP" || kind == "TYPE") << line;
      if (kind == "HELP") {
        help_family = family;
      } else {
        std::string type;
        ls >> type;
        ASSERT_TRUE(type == "counter" || type == "gauge" ||
                    type == "histogram")
            << line;
        // TYPE immediately follows HELP for the same family.
        EXPECT_EQ(family, help_family) << line;
        type_family = family;
      }
      continue;
    }
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(series.empty()) << line;
    ASSERT_FALSE(value.empty()) << line;
    // The series name (up to `{`) must extend the current family name
    // (histogram samples append _bucket/_sum/_count).
    const std::string name = series.substr(0, series.find('{'));
    EXPECT_EQ(name.rfind(type_family, 0), 0u)
        << "sample " << name << " outside family " << type_family;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(end, value.c_str() + value.size()) << "bad value: " << line;
    // Balanced label braces when present.
    const auto open = series.find('{');
    if (open != std::string::npos) {
      EXPECT_EQ(series.back(), '}') << line;
    }
  }
}

TEST_F(ExportersTest, PrometheusExpositionIsWellFormed) {
  auto& rec = Recorder::instance();
  rec.counter("fastfit_trials_total", "Trial outcomes", "outcome=\"SUCCESS\"")
      .add(5);
  rec.counter("fastfit_trials_total", "Trial outcomes", "outcome=\"SEG_FAULT\"")
      .add(2);
  rec.counter("fastfit_journal_flushes_total", "Journal flushes").add();
  rec.gauge("fastfit_leaked_threads", "Leaked rank threads").set(1);
  auto& lat = rec.latency("fastfit_trial_seconds", "Trial latency");
  lat.observe_us(100.0);
  lat.observe_us(2e6);

  const std::string text = to_prometheus(rec.metrics());
  check_prometheus(text);

  // One HELP/TYPE pair per family even with several series.
  std::size_t help_count = 0, at = 0;
  while ((at = text.find("# HELP fastfit_trials_total", at)) !=
         std::string::npos) {
    ++help_count;
    ++at;
  }
  EXPECT_EQ(help_count, 1u);
  EXPECT_NE(text.find("fastfit_trials_total{outcome=\"SUCCESS\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("fastfit_trials_total{outcome=\"SEG_FAULT\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("fastfit_leaked_threads 1"), std::string::npos);
  // Histogram: le buckets, +Inf, _sum, _count.
  EXPECT_NE(text.find("fastfit_trial_seconds_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(text.find("fastfit_trial_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("fastfit_trial_seconds_count 2"), std::string::npos);
  // The drop counter always closes the exposition.
  EXPECT_NE(text.find("fastfit_telemetry_dropped_events_total 0"),
            std::string::npos);
}

TEST_F(ExportersTest, MetricsJsonParsesAndMatchesRegistry) {
  auto& rec = Recorder::instance();
  rec.counter("fastfit_trials_total", "h", "outcome=\"WRONG_ANS\"").add(7);
  rec.gauge("fastfit_leaked_threads", "h").set(2);
  rec.latency("fastfit_trial_seconds", "h").observe_us(50.0);

  const std::string text = to_metrics_json(rec.metrics());
  bool ok = false;
  std::string error;
  const Node root = testjson::parse_or_die(text, &ok, &error);
  ASSERT_TRUE(ok) << error;
  ASSERT_TRUE(root.has("counters"));
  ASSERT_TRUE(root.has("gauges"));
  ASSERT_TRUE(root.has("histograms"));
  ASSERT_TRUE(root.has("dropped_events"));

  bool found = false;
  for (const auto& c : root.at("counters").array) {
    if (c.at("name").string == "fastfit_trials_total" &&
        c.at("labels").string == "outcome=\"WRONG_ANS\"") {
      EXPECT_EQ(c.at("value").number, 7.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  for (const auto& h : root.at("histograms").array) {
    if (h.at("name").string != "fastfit_trial_seconds") continue;
    EXPECT_EQ(h.at("count").number, 1.0);
    EXPECT_FALSE(h.at("buckets").array.empty());
  }
}

TEST_F(ExportersTest, WriteTextFileRoundTripsAndFailsCleanly) {
  const std::string path = ::testing::TempDir() + "fastfit_telemetry_out.txt";
  EXPECT_TRUE(write_text_file(path, "hello\n"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  const auto n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "hello\n");
  std::remove(path.c_str());
  EXPECT_FALSE(write_text_file("/nonexistent-dir/x/y", "boom"));
}

}  // namespace
}  // namespace fastfit::telemetry

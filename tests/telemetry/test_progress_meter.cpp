// Live progress meter: the line renderer (pure function of a metrics
// snapshot) and the monitor thread's periodic metrics re-export.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "telemetry/progress_meter.hpp"
#include "telemetry/recorder.hpp"

namespace fastfit::telemetry {
namespace {

using namespace std::chrono_literals;

MetricsSnapshot synthetic_snapshot() {
  MetricsSnapshot snap;
  snap.counters.push_back(
      {"fastfit_trials_total", "h", "outcome=\"SUCCESS\"", 30});
  snap.counters.push_back(
      {"fastfit_trials_total", "h", "outcome=\"SEG_FAULT\"", 10});
  snap.counters.push_back({"fastfit_trial_retries_total", "h", "", 2});
  snap.counters.push_back({"fastfit_watchdog_fires_total", "h", "", 3});
  snap.gauges.push_back({"fastfit_leaked_threads", "h", "", 1});
  return snap;
}

TEST(ProgressMeterRender, WithExpectedTotalShowsPercentAndEta) {
  const auto line =
      ProgressMeter::render_line(synthetic_snapshot(), /*expected=*/80,
                                 /*elapsed_s=*/10.0);
  // 40 of 80 done at 4/s leaves 40 trials ≈ 10 s.
  EXPECT_NE(line.find("[fastfit] 40/80 trials (50.0%)"), std::string::npos)
      << line;
  EXPECT_NE(line.find("4.0 trials/s"), std::string::npos) << line;
  EXPECT_NE(line.find("ETA 10s"), std::string::npos) << line;
  EXPECT_NE(line.find("SUCCESS=30"), std::string::npos) << line;
  EXPECT_NE(line.find("SEG_FAULT=10"), std::string::npos) << line;
  EXPECT_NE(line.find("retries=2"), std::string::npos) << line;
  EXPECT_NE(line.find("watchdog=3"), std::string::npos) << line;
  EXPECT_NE(line.find("leaked=1"), std::string::npos) << line;
  EXPECT_EQ(line.find("dropped="), std::string::npos) << line;
}

TEST(ProgressMeterRender, WithoutExpectedTotalOmitsEta) {
  const auto line =
      ProgressMeter::render_line(synthetic_snapshot(), 0, 10.0);
  EXPECT_NE(line.find("[fastfit] 40 trials"), std::string::npos) << line;
  EXPECT_EQ(line.find("ETA"), std::string::npos) << line;
}

TEST(ProgressMeterRender, SurfacesDroppedEvents) {
  auto snap = synthetic_snapshot();
  snap.dropped_events = 5;
  const auto line = ProgressMeter::render_line(snap, 0, 1.0);
  EXPECT_NE(line.find("dropped=5"), std::string::npos) << line;
}

TEST(ProgressMeterRender, ZeroElapsedDoesNotDivide) {
  const auto line =
      ProgressMeter::render_line(synthetic_snapshot(), 80, 0.0);
  EXPECT_NE(line.find("0.0 trials/s"), std::string::npos) << line;
}

TEST(ProgressMeterThread, PeriodicallyReexportsMetrics) {
  auto& rec = Recorder::instance();
  rec.enable();
  rec.reset();
  rec.counter("fastfit_trials_total", "h", "outcome=\"SUCCESS\"").add(4);

  const std::string path =
      ::testing::TempDir() + "fastfit_progress_metrics.prom";
  std::remove(path.c_str());
  {
    ProgressMeter::Options opts;
    opts.live_line = false;  // no stderr noise from the test
    opts.interval = 5ms;
    opts.metrics_path = path;
    opts.metrics_interval = 10ms;
    ProgressMeter meter(opts);
    // Wait for at least one periodic export (bounded, not fixed-sleep).
    bool exported = false;
    for (int i = 0; i < 200 && !exported; ++i) {
      std::this_thread::sleep_for(10ms);
      if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
        std::fclose(f);
        exported = true;
      }
    }
    EXPECT_TRUE(exported);
    meter.stop();
  }
  // stop() leaves a final export behind, and the monitor thread's
  // progress-tick spans landed on the Monitor track.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(
      contents.find("fastfit_trials_total{outcome=\"SUCCESS\"} 4"),
      std::string::npos)
      << contents;

  bool tick_seen = false;
  for (const auto& event : rec.drain_events()) {
    if (std::string_view(event.name) == "progress-tick") {
      tick_seen = true;
      EXPECT_EQ(event.track, Track::Monitor);
      EXPECT_EQ(event.index, 1);
    }
  }
  EXPECT_TRUE(tick_seen);
  rec.reset();
  rec.disable();
}

}  // namespace
}  // namespace fastfit::telemetry

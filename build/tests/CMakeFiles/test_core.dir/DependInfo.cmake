
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_campaign.cpp" "tests/CMakeFiles/test_core.dir/core/test_campaign.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_campaign.cpp.o.d"
  "/root/repo/tests/core/test_enumerate.cpp" "tests/CMakeFiles/test_core.dir/core/test_enumerate.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_enumerate.cpp.o.d"
  "/root/repo/tests/core/test_export.cpp" "tests/CMakeFiles/test_core.dir/core/test_export.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_export.cpp.o.d"
  "/root/repo/tests/core/test_fastfit.cpp" "tests/CMakeFiles/test_core.dir/core/test_fastfit.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_fastfit.cpp.o.d"
  "/root/repo/tests/core/test_kitchen_sink.cpp" "tests/CMakeFiles/test_core.dir/core/test_kitchen_sink.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_kitchen_sink.cpp.o.d"
  "/root/repo/tests/core/test_ml_loop.cpp" "tests/CMakeFiles/test_core.dir/core/test_ml_loop.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_ml_loop.cpp.o.d"
  "/root/repo/tests/core/test_ml_loop_windows.cpp" "tests/CMakeFiles/test_core.dir/core/test_ml_loop_windows.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_ml_loop_windows.cpp.o.d"
  "/root/repo/tests/core/test_p2p_study.cpp" "tests/CMakeFiles/test_core.dir/core/test_p2p_study.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_p2p_study.cpp.o.d"
  "/root/repo/tests/core/test_report.cpp" "tests/CMakeFiles/test_core.dir/core/test_report.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_report.cpp.o.d"
  "/root/repo/tests/core/test_study_matrix.cpp" "tests/CMakeFiles/test_core.dir/core/test_study_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_study_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fastfit_support.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fastfit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/fastfit_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fastfit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/fastfit_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/fastfit_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/inject/CMakeFiles/fastfit_inject.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fastfit_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/fastfit_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/pmpi/CMakeFiles/fastfit_pmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

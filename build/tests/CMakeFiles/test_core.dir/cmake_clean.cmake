file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_campaign.cpp.o"
  "CMakeFiles/test_core.dir/core/test_campaign.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_enumerate.cpp.o"
  "CMakeFiles/test_core.dir/core/test_enumerate.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_export.cpp.o"
  "CMakeFiles/test_core.dir/core/test_export.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_fastfit.cpp.o"
  "CMakeFiles/test_core.dir/core/test_fastfit.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_kitchen_sink.cpp.o"
  "CMakeFiles/test_core.dir/core/test_kitchen_sink.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ml_loop.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ml_loop.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ml_loop_windows.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ml_loop_windows.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_p2p_study.cpp.o"
  "CMakeFiles/test_core.dir/core/test_p2p_study.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_study_matrix.cpp.o"
  "CMakeFiles/test_core.dir/core/test_study_matrix.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

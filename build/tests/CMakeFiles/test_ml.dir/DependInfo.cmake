
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/test_classifier.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_classifier.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_classifier.cpp.o.d"
  "/root/repo/tests/ml/test_decision_tree.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_decision_tree.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_decision_tree.cpp.o.d"
  "/root/repo/tests/ml/test_random_forest.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_random_forest.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_random_forest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fastfit_support.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fastfit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/fastfit_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/fastfit_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_ml.dir/ml/test_classifier.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_classifier.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_decision_tree.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_decision_tree.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_random_forest.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_random_forest.cpp.o.d"
  "test_ml"
  "test_ml.pdb"
  "test_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/test_confusion.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_confusion.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_confusion.cpp.o.d"
  "/root/repo/tests/stats/test_correlation.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_correlation.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_correlation.cpp.o.d"
  "/root/repo/tests/stats/test_gaussian.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_gaussian.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_gaussian.cpp.o.d"
  "/root/repo/tests/stats/test_histogram.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o.d"
  "/root/repo/tests/stats/test_interval.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_interval.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_interval.cpp.o.d"
  "/root/repo/tests/stats/test_levels.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_levels.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_levels.cpp.o.d"
  "/root/repo/tests/stats/test_summary.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_summary.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fastfit_support.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fastfit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/fastfit_minimpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

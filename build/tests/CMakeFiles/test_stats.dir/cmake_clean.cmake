file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/test_confusion.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_confusion.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_correlation.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_correlation.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_gaussian.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_gaussian.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_interval.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_interval.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_levels.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_levels.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_summary.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_summary.cpp.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/inject/test_corrupt.cpp" "tests/CMakeFiles/test_inject.dir/inject/test_corrupt.cpp.o" "gcc" "tests/CMakeFiles/test_inject.dir/inject/test_corrupt.cpp.o.d"
  "/root/repo/tests/inject/test_fault_model.cpp" "tests/CMakeFiles/test_inject.dir/inject/test_fault_model.cpp.o" "gcc" "tests/CMakeFiles/test_inject.dir/inject/test_fault_model.cpp.o.d"
  "/root/repo/tests/inject/test_injector.cpp" "tests/CMakeFiles/test_inject.dir/inject/test_injector.cpp.o" "gcc" "tests/CMakeFiles/test_inject.dir/inject/test_injector.cpp.o.d"
  "/root/repo/tests/inject/test_p2p_fault_models.cpp" "tests/CMakeFiles/test_inject.dir/inject/test_p2p_fault_models.cpp.o" "gcc" "tests/CMakeFiles/test_inject.dir/inject/test_p2p_fault_models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fastfit_support.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fastfit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/fastfit_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/inject/CMakeFiles/fastfit_inject.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fastfit_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

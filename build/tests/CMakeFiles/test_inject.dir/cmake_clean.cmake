file(REMOVE_RECURSE
  "CMakeFiles/test_inject.dir/inject/test_corrupt.cpp.o"
  "CMakeFiles/test_inject.dir/inject/test_corrupt.cpp.o.d"
  "CMakeFiles/test_inject.dir/inject/test_fault_model.cpp.o"
  "CMakeFiles/test_inject.dir/inject/test_fault_model.cpp.o.d"
  "CMakeFiles/test_inject.dir/inject/test_injector.cpp.o"
  "CMakeFiles/test_inject.dir/inject/test_injector.cpp.o.d"
  "CMakeFiles/test_inject.dir/inject/test_p2p_fault_models.cpp.o"
  "CMakeFiles/test_inject.dir/inject/test_p2p_fault_models.cpp.o.d"
  "test_inject"
  "test_inject.pdb"
  "test_inject[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

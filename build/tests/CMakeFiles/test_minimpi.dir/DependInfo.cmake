
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/minimpi/test_coll_variants.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_coll_variants.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_coll_variants.cpp.o.d"
  "/root/repo/tests/minimpi/test_collective_properties.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_collective_properties.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_collective_properties.cpp.o.d"
  "/root/repo/tests/minimpi/test_collectives.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_collectives.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_collectives.cpp.o.d"
  "/root/repo/tests/minimpi/test_comm_split.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_comm_split.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_comm_split.cpp.o.d"
  "/root/repo/tests/minimpi/test_faulty_collectives.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_faulty_collectives.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_faulty_collectives.cpp.o.d"
  "/root/repo/tests/minimpi/test_handles.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_handles.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_handles.cpp.o.d"
  "/root/repo/tests/minimpi/test_mailbox.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_mailbox.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_mailbox.cpp.o.d"
  "/root/repo/tests/minimpi/test_memory.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_memory.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_memory.cpp.o.d"
  "/root/repo/tests/minimpi/test_nonblocking.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_nonblocking.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_nonblocking.cpp.o.d"
  "/root/repo/tests/minimpi/test_op.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_op.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_op.cpp.o.d"
  "/root/repo/tests/minimpi/test_op_properties.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_op_properties.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_op_properties.cpp.o.d"
  "/root/repo/tests/minimpi/test_p2p.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_p2p.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_p2p.cpp.o.d"
  "/root/repo/tests/minimpi/test_stress.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_stress.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_stress.cpp.o.d"
  "/root/repo/tests/minimpi/test_validation.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_validation.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_validation.cpp.o.d"
  "/root/repo/tests/minimpi/test_world.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_world.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fastfit_support.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fastfit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/fastfit_minimpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for test_pmpi.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_pmpi.dir/pmpi/test_chain.cpp.o"
  "CMakeFiles/test_pmpi.dir/pmpi/test_chain.cpp.o.d"
  "test_pmpi"
  "test_pmpi.pdb"
  "test_pmpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pmpi/test_chain.cpp" "tests/CMakeFiles/test_pmpi.dir/pmpi/test_chain.cpp.o" "gcc" "tests/CMakeFiles/test_pmpi.dir/pmpi/test_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fastfit_support.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fastfit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/fastfit_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/pmpi/CMakeFiles/fastfit_pmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_support.dir/support/test_bitops.cpp.o"
  "CMakeFiles/test_support.dir/support/test_bitops.cpp.o.d"
  "CMakeFiles/test_support.dir/support/test_config.cpp.o"
  "CMakeFiles/test_support.dir/support/test_config.cpp.o.d"
  "CMakeFiles/test_support.dir/support/test_error.cpp.o"
  "CMakeFiles/test_support.dir/support/test_error.cpp.o.d"
  "CMakeFiles/test_support.dir/support/test_format.cpp.o"
  "CMakeFiles/test_support.dir/support/test_format.cpp.o.d"
  "CMakeFiles/test_support.dir/support/test_rng.cpp.o"
  "CMakeFiles/test_support.dir/support/test_rng.cpp.o.d"
  "test_support"
  "test_support.pdb"
  "test_support[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

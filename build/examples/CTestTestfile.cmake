# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  ENVIRONMENT "NUM_INJ=20" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensitivity_study "/root/repo/build/examples/sensitivity_study" "LU" "8" "4")
set_tests_properties(example_sensitivity_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_workload "/root/repo/build/examples/custom_workload")
set_tests_properties(example_custom_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_predict_untested "/root/repo/build/examples/predict_untested" "LU" "0.5")
set_tests_properties(example_predict_untested PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")

# Empty compiler generated dependencies file for predict_untested.
# This may be replaced when dependencies are built.

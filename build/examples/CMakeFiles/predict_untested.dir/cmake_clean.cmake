file(REMOVE_RECURSE
  "CMakeFiles/predict_untested.dir/predict_untested.cpp.o"
  "CMakeFiles/predict_untested.dir/predict_untested.cpp.o.d"
  "predict_untested"
  "predict_untested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_untested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fastfit.
# This may be replaced when dependencies are built.

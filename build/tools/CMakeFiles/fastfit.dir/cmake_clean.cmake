file(REMOVE_RECURSE
  "CMakeFiles/fastfit.dir/fastfit_cli.cpp.o"
  "CMakeFiles/fastfit.dir/fastfit_cli.cpp.o.d"
  "fastfit"
  "fastfit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastfit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

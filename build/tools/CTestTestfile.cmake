# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/fastfit" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profile "/root/repo/build/tools/fastfit" "profile" "LU" "--ranks" "4")
set_tests_properties(cli_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profile_save "/root/repo/build/tools/fastfit" "profile" "LU" "--ranks" "4" "--save" "lu_enumeration.txt")
set_tests_properties(cli_profile_save PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_study "/root/repo/build/tools/fastfit" "study" "EP" "--ranks" "4" "--trials" "3" "--no-ml")
set_tests_properties(cli_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_p2p "/root/repo/build/tools/fastfit" "p2p" "MG" "--ranks" "4" "--trials" "3" "--points" "20")
set_tests_properties(cli_p2p PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_p2p_no_traffic "/root/repo/build/tools/fastfit" "p2p" "EP" "--ranks" "4")
set_tests_properties(cli_p2p_no_traffic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/fastfit")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_workload "/root/repo/build/tools/fastfit" "profile" "BOGUS")
set_tests_properties(cli_unknown_workload PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_fault_model "/root/repo/build/tools/fastfit" "study" "LU" "--fault-model" "nuke")
set_tests_properties(cli_bad_fault_model PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")

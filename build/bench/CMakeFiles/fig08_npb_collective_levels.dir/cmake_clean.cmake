file(REMOVE_RECURSE
  "CMakeFiles/fig08_npb_collective_levels.dir/fig08_npb_collective_levels.cpp.o"
  "CMakeFiles/fig08_npb_collective_levels.dir/fig08_npb_collective_levels.cpp.o.d"
  "fig08_npb_collective_levels"
  "fig08_npb_collective_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_npb_collective_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

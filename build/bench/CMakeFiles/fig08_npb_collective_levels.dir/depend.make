# Empty dependencies file for fig08_npb_collective_levels.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_p2p_sensitivity.dir/ext_p2p_sensitivity.cpp.o"
  "CMakeFiles/ext_p2p_sensitivity.dir/ext_p2p_sensitivity.cpp.o.d"
  "ext_p2p_sensitivity"
  "ext_p2p_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_p2p_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

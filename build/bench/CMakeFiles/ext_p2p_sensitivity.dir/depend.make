# Empty dependencies file for ext_p2p_sensitivity.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig02_ft_reduce_root.
# This may be replaced when dependencies are built.

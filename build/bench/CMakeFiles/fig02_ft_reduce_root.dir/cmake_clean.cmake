file(REMOVE_RECURSE
  "CMakeFiles/fig02_ft_reduce_root.dir/fig02_ft_reduce_root.cpp.o"
  "CMakeFiles/fig02_ft_reduce_root.dir/fig02_ft_reduce_root.cpp.o.d"
  "fig02_ft_reduce_root"
  "fig02_ft_reduce_root.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_ft_reduce_root.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

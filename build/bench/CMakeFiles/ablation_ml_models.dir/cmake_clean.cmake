file(REMOVE_RECURSE
  "CMakeFiles/ablation_ml_models.dir/ablation_ml_models.cpp.o"
  "CMakeFiles/ablation_ml_models.dir/ablation_ml_models.cpp.o.d"
  "ablation_ml_models"
  "ablation_ml_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ml_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_ml_models.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig10_lammps_error_types.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig10_lammps_error_types.dir/fig10_lammps_error_types.cpp.o"
  "CMakeFiles/fig10_lammps_error_types.dir/fig10_lammps_error_types.cpp.o.d"
  "fig10_lammps_error_types"
  "fig10_lammps_error_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_lammps_error_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table3_reduction.dir/table3_reduction.cpp.o"
  "CMakeFiles/table3_reduction.dir/table3_reduction.cpp.o.d"
  "table3_reduction"
  "table3_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

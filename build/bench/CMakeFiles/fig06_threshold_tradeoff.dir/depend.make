# Empty dependencies file for fig06_threshold_tradeoff.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig06_threshold_tradeoff.dir/fig06_threshold_tradeoff.cpp.o"
  "CMakeFiles/fig06_threshold_tradeoff.dir/fig06_threshold_tradeoff.cpp.o.d"
  "fig06_threshold_tradeoff"
  "fig06_threshold_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_threshold_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

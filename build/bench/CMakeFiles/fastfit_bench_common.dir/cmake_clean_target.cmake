file(REMOVE_RECURSE
  "libfastfit_bench_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fastfit_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/fastfit_bench_common.dir/bench_common.cpp.o.d"
  "libfastfit_bench_common.a"
  "libfastfit_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastfit_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

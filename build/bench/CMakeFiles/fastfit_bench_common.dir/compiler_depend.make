# Empty compiler generated dependencies file for fastfit_bench_common.
# This may be replaced when dependencies are built.

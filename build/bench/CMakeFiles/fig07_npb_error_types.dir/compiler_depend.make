# Empty compiler generated dependencies file for fig07_npb_error_types.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig07_npb_error_types.dir/fig07_npb_error_types.cpp.o"
  "CMakeFiles/fig07_npb_error_types.dir/fig07_npb_error_types.cpp.o.d"
  "fig07_npb_error_types"
  "fig07_npb_error_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_npb_error_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

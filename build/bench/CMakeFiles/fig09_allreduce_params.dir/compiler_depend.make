# Empty compiler generated dependencies file for fig09_allreduce_params.
# This may be replaced when dependencies are built.

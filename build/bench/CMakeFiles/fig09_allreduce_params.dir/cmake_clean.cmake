file(REMOVE_RECURSE
  "CMakeFiles/fig09_allreduce_params.dir/fig09_allreduce_params.cpp.o"
  "CMakeFiles/fig09_allreduce_params.dir/fig09_allreduce_params.cpp.o.d"
  "fig09_allreduce_params"
  "fig09_allreduce_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_allreduce_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

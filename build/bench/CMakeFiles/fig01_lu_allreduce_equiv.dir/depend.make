# Empty dependencies file for fig01_lu_allreduce_equiv.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig01_lu_allreduce_equiv.dir/fig01_lu_allreduce_equiv.cpp.o"
  "CMakeFiles/fig01_lu_allreduce_equiv.dir/fig01_lu_allreduce_equiv.cpp.o.d"
  "fig01_lu_allreduce_equiv"
  "fig01_lu_allreduce_equiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_lu_allreduce_equiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

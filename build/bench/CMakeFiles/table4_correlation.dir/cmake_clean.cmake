file(REMOVE_RECURSE
  "CMakeFiles/table4_correlation.dir/table4_correlation.cpp.o"
  "CMakeFiles/table4_correlation.dir/table4_correlation.cpp.o.d"
  "table4_correlation"
  "table4_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

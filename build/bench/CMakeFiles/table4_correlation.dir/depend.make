# Empty dependencies file for table4_correlation.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_trials_convergence.
# This may be replaced when dependencies are built.

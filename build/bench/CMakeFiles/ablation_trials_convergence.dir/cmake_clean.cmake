file(REMOVE_RECURSE
  "CMakeFiles/ablation_trials_convergence.dir/ablation_trials_convergence.cpp.o"
  "CMakeFiles/ablation_trials_convergence.dir/ablation_trials_convergence.cpp.o.d"
  "ablation_trials_convergence"
  "ablation_trials_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trials_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig03_context_distribution.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig03_context_distribution.dir/fig03_context_distribution.cpp.o"
  "CMakeFiles/fig03_context_distribution.dir/fig03_context_distribution.cpp.o.d"
  "fig03_context_distribution"
  "fig03_context_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_context_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig12_13_ml_accuracy.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_collectives.cpp" "bench/CMakeFiles/micro_collectives.dir/micro_collectives.cpp.o" "gcc" "bench/CMakeFiles/micro_collectives.dir/micro_collectives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fastfit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/fastfit_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/fastfit_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/inject/CMakeFiles/fastfit_inject.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fastfit_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/fastfit_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/pmpi/CMakeFiles/fastfit_pmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/fastfit_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fastfit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fastfit_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for fig11_lammps_collective_levels.
# This may be replaced when dependencies are built.

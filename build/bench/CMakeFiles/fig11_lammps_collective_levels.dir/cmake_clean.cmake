file(REMOVE_RECURSE
  "CMakeFiles/fig11_lammps_collective_levels.dir/fig11_lammps_collective_levels.cpp.o"
  "CMakeFiles/fig11_lammps_collective_levels.dir/fig11_lammps_collective_levels.cpp.o.d"
  "fig11_lammps_collective_levels"
  "fig11_lammps_collective_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_lammps_collective_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

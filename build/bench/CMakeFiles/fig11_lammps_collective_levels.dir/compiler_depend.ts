# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig11_lammps_collective_levels.

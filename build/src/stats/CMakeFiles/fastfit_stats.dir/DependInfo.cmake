
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/confusion.cpp" "src/stats/CMakeFiles/fastfit_stats.dir/confusion.cpp.o" "gcc" "src/stats/CMakeFiles/fastfit_stats.dir/confusion.cpp.o.d"
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/fastfit_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/fastfit_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/gaussian.cpp" "src/stats/CMakeFiles/fastfit_stats.dir/gaussian.cpp.o" "gcc" "src/stats/CMakeFiles/fastfit_stats.dir/gaussian.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/fastfit_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/fastfit_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/interval.cpp" "src/stats/CMakeFiles/fastfit_stats.dir/interval.cpp.o" "gcc" "src/stats/CMakeFiles/fastfit_stats.dir/interval.cpp.o.d"
  "/root/repo/src/stats/levels.cpp" "src/stats/CMakeFiles/fastfit_stats.dir/levels.cpp.o" "gcc" "src/stats/CMakeFiles/fastfit_stats.dir/levels.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/fastfit_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/fastfit_stats.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fastfit_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

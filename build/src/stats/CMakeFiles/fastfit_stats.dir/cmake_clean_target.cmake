file(REMOVE_RECURSE
  "libfastfit_stats.a"
)

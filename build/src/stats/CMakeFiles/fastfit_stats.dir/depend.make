# Empty dependencies file for fastfit_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fastfit_stats.dir/confusion.cpp.o"
  "CMakeFiles/fastfit_stats.dir/confusion.cpp.o.d"
  "CMakeFiles/fastfit_stats.dir/correlation.cpp.o"
  "CMakeFiles/fastfit_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/fastfit_stats.dir/gaussian.cpp.o"
  "CMakeFiles/fastfit_stats.dir/gaussian.cpp.o.d"
  "CMakeFiles/fastfit_stats.dir/histogram.cpp.o"
  "CMakeFiles/fastfit_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/fastfit_stats.dir/interval.cpp.o"
  "CMakeFiles/fastfit_stats.dir/interval.cpp.o.d"
  "CMakeFiles/fastfit_stats.dir/levels.cpp.o"
  "CMakeFiles/fastfit_stats.dir/levels.cpp.o.d"
  "CMakeFiles/fastfit_stats.dir/summary.cpp.o"
  "CMakeFiles/fastfit_stats.dir/summary.cpp.o.d"
  "libfastfit_stats.a"
  "libfastfit_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastfit_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libfastfit_support.a"
)

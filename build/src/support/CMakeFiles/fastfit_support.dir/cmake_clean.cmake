file(REMOVE_RECURSE
  "CMakeFiles/fastfit_support.dir/config.cpp.o"
  "CMakeFiles/fastfit_support.dir/config.cpp.o.d"
  "CMakeFiles/fastfit_support.dir/error.cpp.o"
  "CMakeFiles/fastfit_support.dir/error.cpp.o.d"
  "CMakeFiles/fastfit_support.dir/format.cpp.o"
  "CMakeFiles/fastfit_support.dir/format.cpp.o.d"
  "CMakeFiles/fastfit_support.dir/rng.cpp.o"
  "CMakeFiles/fastfit_support.dir/rng.cpp.o.d"
  "libfastfit_support.a"
  "libfastfit_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastfit_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

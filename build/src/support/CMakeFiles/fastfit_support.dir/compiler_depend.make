# Empty compiler generated dependencies file for fastfit_support.
# This may be replaced when dependencies are built.

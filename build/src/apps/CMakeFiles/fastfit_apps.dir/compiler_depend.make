# Empty compiler generated dependencies file for fastfit_apps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libfastfit_apps.a"
)

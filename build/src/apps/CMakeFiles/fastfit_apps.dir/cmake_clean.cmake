file(REMOVE_RECURSE
  "CMakeFiles/fastfit_apps.dir/cg.cpp.o"
  "CMakeFiles/fastfit_apps.dir/cg.cpp.o.d"
  "CMakeFiles/fastfit_apps.dir/ep.cpp.o"
  "CMakeFiles/fastfit_apps.dir/ep.cpp.o.d"
  "CMakeFiles/fastfit_apps.dir/fft.cpp.o"
  "CMakeFiles/fastfit_apps.dir/fft.cpp.o.d"
  "CMakeFiles/fastfit_apps.dir/ft.cpp.o"
  "CMakeFiles/fastfit_apps.dir/ft.cpp.o.d"
  "CMakeFiles/fastfit_apps.dir/is.cpp.o"
  "CMakeFiles/fastfit_apps.dir/is.cpp.o.d"
  "CMakeFiles/fastfit_apps.dir/lu.cpp.o"
  "CMakeFiles/fastfit_apps.dir/lu.cpp.o.d"
  "CMakeFiles/fastfit_apps.dir/mg.cpp.o"
  "CMakeFiles/fastfit_apps.dir/mg.cpp.o.d"
  "CMakeFiles/fastfit_apps.dir/minimd.cpp.o"
  "CMakeFiles/fastfit_apps.dir/minimd.cpp.o.d"
  "CMakeFiles/fastfit_apps.dir/registry.cpp.o"
  "CMakeFiles/fastfit_apps.dir/registry.cpp.o.d"
  "CMakeFiles/fastfit_apps.dir/workload.cpp.o"
  "CMakeFiles/fastfit_apps.dir/workload.cpp.o.d"
  "libfastfit_apps.a"
  "libfastfit_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastfit_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

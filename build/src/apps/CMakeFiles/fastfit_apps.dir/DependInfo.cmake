
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cg.cpp" "src/apps/CMakeFiles/fastfit_apps.dir/cg.cpp.o" "gcc" "src/apps/CMakeFiles/fastfit_apps.dir/cg.cpp.o.d"
  "/root/repo/src/apps/ep.cpp" "src/apps/CMakeFiles/fastfit_apps.dir/ep.cpp.o" "gcc" "src/apps/CMakeFiles/fastfit_apps.dir/ep.cpp.o.d"
  "/root/repo/src/apps/fft.cpp" "src/apps/CMakeFiles/fastfit_apps.dir/fft.cpp.o" "gcc" "src/apps/CMakeFiles/fastfit_apps.dir/fft.cpp.o.d"
  "/root/repo/src/apps/ft.cpp" "src/apps/CMakeFiles/fastfit_apps.dir/ft.cpp.o" "gcc" "src/apps/CMakeFiles/fastfit_apps.dir/ft.cpp.o.d"
  "/root/repo/src/apps/is.cpp" "src/apps/CMakeFiles/fastfit_apps.dir/is.cpp.o" "gcc" "src/apps/CMakeFiles/fastfit_apps.dir/is.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/apps/CMakeFiles/fastfit_apps.dir/lu.cpp.o" "gcc" "src/apps/CMakeFiles/fastfit_apps.dir/lu.cpp.o.d"
  "/root/repo/src/apps/mg.cpp" "src/apps/CMakeFiles/fastfit_apps.dir/mg.cpp.o" "gcc" "src/apps/CMakeFiles/fastfit_apps.dir/mg.cpp.o.d"
  "/root/repo/src/apps/minimd.cpp" "src/apps/CMakeFiles/fastfit_apps.dir/minimd.cpp.o" "gcc" "src/apps/CMakeFiles/fastfit_apps.dir/minimd.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/fastfit_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/fastfit_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/workload.cpp" "src/apps/CMakeFiles/fastfit_apps.dir/workload.cpp.o" "gcc" "src/apps/CMakeFiles/fastfit_apps.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minimpi/CMakeFiles/fastfit_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fastfit_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fastfit_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minimpi/coll_gatherall.cpp" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/coll_gatherall.cpp.o" "gcc" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/coll_gatherall.cpp.o.d"
  "/root/repo/src/minimpi/coll_reduce.cpp" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/coll_reduce.cpp.o" "gcc" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/coll_reduce.cpp.o.d"
  "/root/repo/src/minimpi/coll_rooted.cpp" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/coll_rooted.cpp.o" "gcc" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/coll_rooted.cpp.o.d"
  "/root/repo/src/minimpi/coll_sync.cpp" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/coll_sync.cpp.o" "gcc" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/coll_sync.cpp.o.d"
  "/root/repo/src/minimpi/coll_variants.cpp" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/coll_variants.cpp.o" "gcc" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/coll_variants.cpp.o.d"
  "/root/repo/src/minimpi/coll_vector.cpp" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/coll_vector.cpp.o" "gcc" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/coll_vector.cpp.o.d"
  "/root/repo/src/minimpi/datatype.cpp" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/datatype.cpp.o" "gcc" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/datatype.cpp.o.d"
  "/root/repo/src/minimpi/hooks.cpp" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/hooks.cpp.o" "gcc" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/hooks.cpp.o.d"
  "/root/repo/src/minimpi/mailbox.cpp" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/mailbox.cpp.o" "gcc" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/mailbox.cpp.o.d"
  "/root/repo/src/minimpi/memory.cpp" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/memory.cpp.o" "gcc" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/memory.cpp.o.d"
  "/root/repo/src/minimpi/mpi.cpp" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/mpi.cpp.o" "gcc" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/mpi.cpp.o.d"
  "/root/repo/src/minimpi/op.cpp" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/op.cpp.o" "gcc" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/op.cpp.o.d"
  "/root/repo/src/minimpi/types.cpp" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/types.cpp.o" "gcc" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/types.cpp.o.d"
  "/root/repo/src/minimpi/validate.cpp" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/validate.cpp.o" "gcc" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/validate.cpp.o.d"
  "/root/repo/src/minimpi/world.cpp" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/world.cpp.o" "gcc" "src/minimpi/CMakeFiles/fastfit_minimpi.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fastfit_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

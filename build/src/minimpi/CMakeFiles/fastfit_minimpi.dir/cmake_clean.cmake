file(REMOVE_RECURSE
  "CMakeFiles/fastfit_minimpi.dir/coll_gatherall.cpp.o"
  "CMakeFiles/fastfit_minimpi.dir/coll_gatherall.cpp.o.d"
  "CMakeFiles/fastfit_minimpi.dir/coll_reduce.cpp.o"
  "CMakeFiles/fastfit_minimpi.dir/coll_reduce.cpp.o.d"
  "CMakeFiles/fastfit_minimpi.dir/coll_rooted.cpp.o"
  "CMakeFiles/fastfit_minimpi.dir/coll_rooted.cpp.o.d"
  "CMakeFiles/fastfit_minimpi.dir/coll_sync.cpp.o"
  "CMakeFiles/fastfit_minimpi.dir/coll_sync.cpp.o.d"
  "CMakeFiles/fastfit_minimpi.dir/coll_variants.cpp.o"
  "CMakeFiles/fastfit_minimpi.dir/coll_variants.cpp.o.d"
  "CMakeFiles/fastfit_minimpi.dir/coll_vector.cpp.o"
  "CMakeFiles/fastfit_minimpi.dir/coll_vector.cpp.o.d"
  "CMakeFiles/fastfit_minimpi.dir/datatype.cpp.o"
  "CMakeFiles/fastfit_minimpi.dir/datatype.cpp.o.d"
  "CMakeFiles/fastfit_minimpi.dir/hooks.cpp.o"
  "CMakeFiles/fastfit_minimpi.dir/hooks.cpp.o.d"
  "CMakeFiles/fastfit_minimpi.dir/mailbox.cpp.o"
  "CMakeFiles/fastfit_minimpi.dir/mailbox.cpp.o.d"
  "CMakeFiles/fastfit_minimpi.dir/memory.cpp.o"
  "CMakeFiles/fastfit_minimpi.dir/memory.cpp.o.d"
  "CMakeFiles/fastfit_minimpi.dir/mpi.cpp.o"
  "CMakeFiles/fastfit_minimpi.dir/mpi.cpp.o.d"
  "CMakeFiles/fastfit_minimpi.dir/op.cpp.o"
  "CMakeFiles/fastfit_minimpi.dir/op.cpp.o.d"
  "CMakeFiles/fastfit_minimpi.dir/types.cpp.o"
  "CMakeFiles/fastfit_minimpi.dir/types.cpp.o.d"
  "CMakeFiles/fastfit_minimpi.dir/validate.cpp.o"
  "CMakeFiles/fastfit_minimpi.dir/validate.cpp.o.d"
  "CMakeFiles/fastfit_minimpi.dir/world.cpp.o"
  "CMakeFiles/fastfit_minimpi.dir/world.cpp.o.d"
  "libfastfit_minimpi.a"
  "libfastfit_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastfit_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

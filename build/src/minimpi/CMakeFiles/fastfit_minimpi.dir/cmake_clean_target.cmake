file(REMOVE_RECURSE
  "libfastfit_minimpi.a"
)

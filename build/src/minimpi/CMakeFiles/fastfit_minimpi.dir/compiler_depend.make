# Empty compiler generated dependencies file for fastfit_minimpi.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fastfit_ml.dir/classifier.cpp.o"
  "CMakeFiles/fastfit_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/fastfit_ml.dir/dataset.cpp.o"
  "CMakeFiles/fastfit_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/fastfit_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/fastfit_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/fastfit_ml.dir/knn.cpp.o"
  "CMakeFiles/fastfit_ml.dir/knn.cpp.o.d"
  "CMakeFiles/fastfit_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/fastfit_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/fastfit_ml.dir/random_forest.cpp.o"
  "CMakeFiles/fastfit_ml.dir/random_forest.cpp.o.d"
  "libfastfit_ml.a"
  "libfastfit_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastfit_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

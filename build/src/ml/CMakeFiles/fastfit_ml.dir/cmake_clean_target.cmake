file(REMOVE_RECURSE
  "libfastfit_ml.a"
)

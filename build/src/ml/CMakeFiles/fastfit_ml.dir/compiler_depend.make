# Empty compiler generated dependencies file for fastfit_ml.
# This may be replaced when dependencies are built.

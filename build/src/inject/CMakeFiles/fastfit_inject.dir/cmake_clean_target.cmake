file(REMOVE_RECURSE
  "libfastfit_inject.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fastfit_inject.dir/corrupt.cpp.o"
  "CMakeFiles/fastfit_inject.dir/corrupt.cpp.o.d"
  "CMakeFiles/fastfit_inject.dir/fault_model.cpp.o"
  "CMakeFiles/fastfit_inject.dir/fault_model.cpp.o.d"
  "CMakeFiles/fastfit_inject.dir/fault_spec.cpp.o"
  "CMakeFiles/fastfit_inject.dir/fault_spec.cpp.o.d"
  "CMakeFiles/fastfit_inject.dir/injector.cpp.o"
  "CMakeFiles/fastfit_inject.dir/injector.cpp.o.d"
  "CMakeFiles/fastfit_inject.dir/outcome.cpp.o"
  "CMakeFiles/fastfit_inject.dir/outcome.cpp.o.d"
  "CMakeFiles/fastfit_inject.dir/p2p_injector.cpp.o"
  "CMakeFiles/fastfit_inject.dir/p2p_injector.cpp.o.d"
  "libfastfit_inject.a"
  "libfastfit_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastfit_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

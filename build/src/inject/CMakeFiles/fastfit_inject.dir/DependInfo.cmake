
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inject/corrupt.cpp" "src/inject/CMakeFiles/fastfit_inject.dir/corrupt.cpp.o" "gcc" "src/inject/CMakeFiles/fastfit_inject.dir/corrupt.cpp.o.d"
  "/root/repo/src/inject/fault_model.cpp" "src/inject/CMakeFiles/fastfit_inject.dir/fault_model.cpp.o" "gcc" "src/inject/CMakeFiles/fastfit_inject.dir/fault_model.cpp.o.d"
  "/root/repo/src/inject/fault_spec.cpp" "src/inject/CMakeFiles/fastfit_inject.dir/fault_spec.cpp.o" "gcc" "src/inject/CMakeFiles/fastfit_inject.dir/fault_spec.cpp.o.d"
  "/root/repo/src/inject/injector.cpp" "src/inject/CMakeFiles/fastfit_inject.dir/injector.cpp.o" "gcc" "src/inject/CMakeFiles/fastfit_inject.dir/injector.cpp.o.d"
  "/root/repo/src/inject/outcome.cpp" "src/inject/CMakeFiles/fastfit_inject.dir/outcome.cpp.o" "gcc" "src/inject/CMakeFiles/fastfit_inject.dir/outcome.cpp.o.d"
  "/root/repo/src/inject/p2p_injector.cpp" "src/inject/CMakeFiles/fastfit_inject.dir/p2p_injector.cpp.o" "gcc" "src/inject/CMakeFiles/fastfit_inject.dir/p2p_injector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minimpi/CMakeFiles/fastfit_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fastfit_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fastfit_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for fastfit_inject.
# This may be replaced when dependencies are built.

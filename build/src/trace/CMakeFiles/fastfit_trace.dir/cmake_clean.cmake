file(REMOVE_RECURSE
  "CMakeFiles/fastfit_trace.dir/call_graph.cpp.o"
  "CMakeFiles/fastfit_trace.dir/call_graph.cpp.o.d"
  "CMakeFiles/fastfit_trace.dir/comm_trace.cpp.o"
  "CMakeFiles/fastfit_trace.dir/comm_trace.cpp.o.d"
  "CMakeFiles/fastfit_trace.dir/rank_context.cpp.o"
  "CMakeFiles/fastfit_trace.dir/rank_context.cpp.o.d"
  "CMakeFiles/fastfit_trace.dir/shadow_stack.cpp.o"
  "CMakeFiles/fastfit_trace.dir/shadow_stack.cpp.o.d"
  "CMakeFiles/fastfit_trace.dir/similarity.cpp.o"
  "CMakeFiles/fastfit_trace.dir/similarity.cpp.o.d"
  "libfastfit_trace.a"
  "libfastfit_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastfit_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

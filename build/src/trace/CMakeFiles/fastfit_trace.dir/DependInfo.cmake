
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/call_graph.cpp" "src/trace/CMakeFiles/fastfit_trace.dir/call_graph.cpp.o" "gcc" "src/trace/CMakeFiles/fastfit_trace.dir/call_graph.cpp.o.d"
  "/root/repo/src/trace/comm_trace.cpp" "src/trace/CMakeFiles/fastfit_trace.dir/comm_trace.cpp.o" "gcc" "src/trace/CMakeFiles/fastfit_trace.dir/comm_trace.cpp.o.d"
  "/root/repo/src/trace/rank_context.cpp" "src/trace/CMakeFiles/fastfit_trace.dir/rank_context.cpp.o" "gcc" "src/trace/CMakeFiles/fastfit_trace.dir/rank_context.cpp.o.d"
  "/root/repo/src/trace/shadow_stack.cpp" "src/trace/CMakeFiles/fastfit_trace.dir/shadow_stack.cpp.o" "gcc" "src/trace/CMakeFiles/fastfit_trace.dir/shadow_stack.cpp.o.d"
  "/root/repo/src/trace/similarity.cpp" "src/trace/CMakeFiles/fastfit_trace.dir/similarity.cpp.o" "gcc" "src/trace/CMakeFiles/fastfit_trace.dir/similarity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fastfit_support.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/fastfit_minimpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for fastfit_trace.
# This may be replaced when dependencies are built.

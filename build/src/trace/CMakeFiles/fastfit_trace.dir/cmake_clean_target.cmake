file(REMOVE_RECURSE
  "libfastfit_trace.a"
)

# Empty compiler generated dependencies file for fastfit_pmpi.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libfastfit_pmpi.a"
)

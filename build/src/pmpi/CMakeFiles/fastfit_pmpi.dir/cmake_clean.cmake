file(REMOVE_RECURSE
  "CMakeFiles/fastfit_pmpi.dir/chain.cpp.o"
  "CMakeFiles/fastfit_pmpi.dir/chain.cpp.o.d"
  "libfastfit_pmpi.a"
  "libfastfit_pmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastfit_pmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

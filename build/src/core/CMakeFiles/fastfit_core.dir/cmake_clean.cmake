file(REMOVE_RECURSE
  "CMakeFiles/fastfit_core.dir/campaign.cpp.o"
  "CMakeFiles/fastfit_core.dir/campaign.cpp.o.d"
  "CMakeFiles/fastfit_core.dir/enumerate.cpp.o"
  "CMakeFiles/fastfit_core.dir/enumerate.cpp.o.d"
  "CMakeFiles/fastfit_core.dir/export.cpp.o"
  "CMakeFiles/fastfit_core.dir/export.cpp.o.d"
  "CMakeFiles/fastfit_core.dir/fastfit.cpp.o"
  "CMakeFiles/fastfit_core.dir/fastfit.cpp.o.d"
  "CMakeFiles/fastfit_core.dir/ml_loop.cpp.o"
  "CMakeFiles/fastfit_core.dir/ml_loop.cpp.o.d"
  "CMakeFiles/fastfit_core.dir/p2p_study.cpp.o"
  "CMakeFiles/fastfit_core.dir/p2p_study.cpp.o.d"
  "CMakeFiles/fastfit_core.dir/points.cpp.o"
  "CMakeFiles/fastfit_core.dir/points.cpp.o.d"
  "CMakeFiles/fastfit_core.dir/report.cpp.o"
  "CMakeFiles/fastfit_core.dir/report.cpp.o.d"
  "libfastfit_core.a"
  "libfastfit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastfit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

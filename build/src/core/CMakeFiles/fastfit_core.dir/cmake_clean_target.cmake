file(REMOVE_RECURSE
  "libfastfit_core.a"
)

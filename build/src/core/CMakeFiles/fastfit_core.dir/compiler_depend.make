# Empty compiler generated dependencies file for fastfit_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libfastfit_profile.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fastfit_profile.dir/profiler.cpp.o"
  "CMakeFiles/fastfit_profile.dir/profiler.cpp.o.d"
  "CMakeFiles/fastfit_profile.dir/queries.cpp.o"
  "CMakeFiles/fastfit_profile.dir/queries.cpp.o.d"
  "libfastfit_profile.a"
  "libfastfit_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastfit_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

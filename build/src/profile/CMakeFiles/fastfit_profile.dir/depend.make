# Empty dependencies file for fastfit_profile.
# This may be replaced when dependencies are built.

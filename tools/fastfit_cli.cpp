// fastfit — the command-line front end of the tool.
//
//   fastfit list
//       Bundled workloads, prediction models, fault models.
//
//   fastfit profile <workload> [--ranks N] [--save FILE]
//       Phase 1 only: golden + profiling run, the mpiP-style
//       communication report, and the pruning statistics. --save persists
//       the enumeration (profiling is a one-time cost; Sec IV-B).
//
//   fastfit study <workload> [--ranks N] [--trials T] [--threshold X]
//                 [--fault-model NAME] [--no-ml] [--parallel-trials P]
//                 [--seed S] [--csv FILE] [--json FILE]
//                 [--journal FILE] [--resume]
//                 [--max-trial-retries R] [--watchdog-escalation M]
//                 [--hang-detection 0|1] [--max-leaked-threads N]
//       The full three-phase sensitivity study, with optional CSV/JSON
//       export of the results. --journal records every completed trial in
//       a durable journal; --resume continues a killed campaign from it,
//       bit-identically (see docs/resilience.md). --hang-detection 0
//       disables the deterministic deadlock monitor (timeout-only
//       classification; see docs/hang_detection.md) and
//       --max-leaked-threads bounds the quarantined-thread budget. The
//       FASTFIT_JOURNAL, FASTFIT_MAX_TRIAL_RETRIES,
//       FASTFIT_WATCHDOG_ESCALATION, FASTFIT_HANG_DETECTION, and
//       FASTFIT_MAX_LEAKED_THREADS environment variables are the
//       flagless equivalents.
//
//       Telemetry (docs/observability.md): --trace-out FILE writes a
//       Perfetto-loadable Chrome trace of the trial lifecycle,
//       --metrics-out FILE a metrics snapshot (".json" = JSON, else
//       Prometheus text), --progress a live one-line report on stderr,
//       and --metrics-interval-ms MS a periodic metrics re-export.
//       FASTFIT_TRACE, FASTFIT_METRICS, FASTFIT_PROGRESS, and
//       FASTFIT_METRICS_INTERVAL_MS are the flagless equivalents. Any of
//       these enables the recorder; without them it costs nothing.
//       Independent of telemetry, every study prints the per-outcome
//       trial totals and the campaign health table on stderr.
//
//   fastfit p2p <workload> [--ranks N] [--trials T] [--points K]
//       The point-to-point extension study (Sec VIII future work):
//       pruning statistics and per-parameter response distributions for
//       the workload's send/recv calls.
//
// Exit codes: 0 clean success, 2 study completed but unhealthy —
// quarantined points (results are partial for those points) or rank
// threads still leaked in quarantine after the final reap, 1 fatal
// (usage or execution error).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "apps/registry.hpp"
#include "core/export.hpp"
#include "core/fastfit.hpp"
#include "core/p2p_study.hpp"
#include "core/report.hpp"
#include "ml/classifier.hpp"
#include "profile/queries.hpp"
#include "stats/levels.hpp"
#include "support/config.hpp"
#include "support/format.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/progress_meter.hpp"
#include "telemetry/recorder.hpp"

using namespace fastfit;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  fastfit list\n"
               "  fastfit profile <workload> [--ranks N]\n"
               "  fastfit study <workload> [--ranks N] [--trials T]\n"
               "                [--threshold X] [--fault-model NAME]\n"
               "                [--no-ml] [--parallel-trials P]\n"
               "                [--seed S] [--csv FILE] [--json FILE]\n"
               "                [--journal FILE] [--resume]\n"
               "                [--max-trial-retries R]\n"
               "                [--watchdog-escalation M]\n"
               "                [--hang-detection 0|1]\n"
               "                [--max-leaked-threads N]\n"
               "                [--trace-out FILE] [--metrics-out FILE]\n"
               "                [--progress] [--metrics-interval-ms MS]\n"
               "  fastfit p2p <workload> [--ranks N] [--trials T] "
               "[--points K]\n");
  return 1;
}

/// Minimal flag parser: --key value pairs plus boolean switches.
struct Args {
  std::map<std::string, std::string> values;
  bool parse(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) return false;
      key = key.substr(2);
      if (key == "no-ml" || key == "resume" || key == "progress") {
        values[key] = "1";
      } else {
        if (i + 1 >= argc) return false;
        values[key] = argv[++i];
      }
    }
    return true;
  }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  bool has(const std::string& key) const { return values.count(key) > 0; }
};

/// Validates --parallel-trials through the InjectionConfig parser (same
/// rules as the FASTFIT_PARALLEL_TRIALS environment variable).
std::size_t parse_parallel_trials(const std::string& value) {
  const auto cfg =
      InjectionConfig::from_map({{"FASTFIT_PARALLEL_TRIALS", value}});
  return static_cast<std::size_t>(cfg.parallel_trials);
}

inject::FaultModel parse_fault_model(const std::string& name) {
  for (std::size_t m = 0; m < inject::kNumFaultModels; ++m) {
    const auto model = static_cast<inject::FaultModel>(m);
    if (name == to_string(model)) return model;
  }
  throw ConfigError("unknown fault model: " + name);
}

int cmd_list() {
  std::printf("workloads:      %s\n",
              join(apps::workload_names(), ", ").c_str());
  std::printf("models:         %s\n",
              join(ml::classifier_names(), ", ").c_str());
  std::string fault_models;
  for (std::size_t m = 0; m < inject::kNumFaultModels; ++m) {
    if (m) fault_models += ", ";
    fault_models += to_string(static_cast<inject::FaultModel>(m));
  }
  std::printf("fault models:   %s\n", fault_models.c_str());
  return 0;
}

int cmd_profile(const std::string& workload_name, const Args& args) {
  const auto workload = apps::make_workload(workload_name);
  core::CampaignOptions options;
  options.nranks = std::atoi(args.get("ranks", "16").c_str());
  core::Campaign campaign(*workload, options);
  campaign.profile();

  std::printf("%s\n", profile::mpip_report(campaign.profiler()).c_str());
  const auto& s = campaign.stats();
  std::printf("equivalence classes: %zu of %d ranks\n",
              s.equivalence_classes, s.nranks);
  std::printf("injection points:    %llu total -> %llu after semantic "
              "pruning (%s) -> %llu after context pruning (%s)\n",
              static_cast<unsigned long long>(s.total_points),
              static_cast<unsigned long long>(s.after_semantic),
              percent(s.semantic_reduction()).c_str(),
              static_cast<unsigned long long>(s.after_context),
              percent(s.context_reduction()).c_str());
  if (args.has("save")) {
    core::write_file(args.get("save", ""),
                     core::to_text(campaign.enumeration()));
    std::printf("saved enumeration to %s\n", args.get("save", "").c_str());
  }
  return 0;
}

int cmd_study(const std::string& workload_name, const Args& args) {
  const auto workload = apps::make_workload(workload_name);
  core::FastFitOptions options;
  options.campaign.nranks = std::atoi(args.get("ranks", "16").c_str());
  options.campaign.trials_per_point =
      static_cast<std::uint32_t>(std::atoi(args.get("trials", "12").c_str()));
  options.campaign.seed =
      std::strtoull(args.get("seed", "258398418711").c_str(), nullptr, 10);
  options.campaign.fault_model =
      parse_fault_model(args.get("fault-model", "single-bit-flip"));
  options.use_ml = !args.has("no-ml");
  options.ml.accuracy_threshold =
      std::atof(args.get("threshold", "0.65").c_str());
  if (args.has("parallel-trials")) {
    options.campaign.max_parallel_trials =
        parse_parallel_trials(args.get("parallel-trials", "0"));
  }

  // Resilience knobs: flags override the FASTFIT_* environment (both are
  // validated by the InjectionConfig parser, so limits match).
  const auto env = InjectionConfig::from_environment();
  options.journal = env.journal;
  options.campaign.max_trial_retries =
      static_cast<std::uint32_t>(env.max_trial_retries);
  options.campaign.watchdog_escalation =
      static_cast<std::uint32_t>(env.watchdog_escalation);
  if (args.has("journal")) options.journal = args.get("journal", "");
  if (args.has("max-trial-retries")) {
    options.campaign.max_trial_retries = static_cast<std::uint32_t>(
        InjectionConfig::from_map({{"FASTFIT_MAX_TRIAL_RETRIES",
                                    args.get("max-trial-retries", "2")}})
            .max_trial_retries);
  }
  if (args.has("watchdog-escalation")) {
    options.campaign.watchdog_escalation = static_cast<std::uint32_t>(
        InjectionConfig::from_map({{"FASTFIT_WATCHDOG_ESCALATION",
                                    args.get("watchdog-escalation", "4")}})
            .watchdog_escalation);
  }
  options.campaign.deterministic_hang_detection = env.hang_detection;
  options.campaign.max_leaked_threads =
      static_cast<std::size_t>(env.max_leaked_threads);
  if (args.has("hang-detection")) {
    options.campaign.deterministic_hang_detection =
        InjectionConfig::from_map(
            {{"FASTFIT_HANG_DETECTION", args.get("hang-detection", "1")}})
            .hang_detection;
  }
  if (args.has("max-leaked-threads")) {
    options.campaign.max_leaked_threads = static_cast<std::size_t>(
        InjectionConfig::from_map({{"FASTFIT_MAX_LEAKED_THREADS",
                                    args.get("max-leaked-threads", "8")}})
            .max_leaked_threads);
  }
  options.resume = args.has("resume");
  if (options.resume && options.journal.empty()) {
    throw ConfigError("--resume requires --journal (or FASTFIT_JOURNAL)");
  }

  // Telemetry sinks: flags override the FASTFIT_* environment; any sink
  // enables the recorder (it is off — and free — otherwise).
  std::string trace_out = env.trace_out;
  std::string metrics_out = env.metrics_out;
  bool progress = env.progress;
  std::uint64_t metrics_interval_ms = env.metrics_interval_ms;
  if (args.has("trace-out")) trace_out = args.get("trace-out", "");
  if (args.has("metrics-out")) metrics_out = args.get("metrics-out", "");
  if (args.has("progress")) progress = true;
  if (args.has("metrics-interval-ms")) {
    metrics_interval_ms =
        InjectionConfig::from_map(
            {{"FASTFIT_METRICS_INTERVAL_MS",
              args.get("metrics-interval-ms", "0")}})
            .metrics_interval_ms;
  }
  const bool telemetry_on =
      !trace_out.empty() || !metrics_out.empty() || progress;
  auto& recorder = telemetry::Recorder::instance();
  std::unique_ptr<telemetry::ProgressMeter> meter;
  if (telemetry_on) {
    recorder.enable();
    telemetry::Recorder::bind_thread(telemetry::Track::Main, -1,
                                     "campaign-main");
    if (progress || (metrics_interval_ms > 0 && !metrics_out.empty())) {
      telemetry::ProgressMeter::Options meter_opts;
      meter_opts.live_line = progress;
      meter_opts.metrics_path = metrics_out;
      meter_opts.metrics_interval =
          std::chrono::milliseconds(metrics_interval_ms);
      meter = std::make_unique<telemetry::ProgressMeter>(meter_opts);
    }
  }

  core::FastFit study(*workload, options);
  const auto result = study.run();
  if (meter) meter->stop();

  const auto& s = result.stats;
  std::printf("pruning: %llu -> %llu (%s) -> %llu (%s); ML predicted %s; "
              "total reduction %s\n\n",
              static_cast<unsigned long long>(s.total_points),
              static_cast<unsigned long long>(s.after_semantic),
              percent(s.semantic_reduction()).c_str(),
              static_cast<unsigned long long>(s.after_context),
              percent(s.context_reduction()).c_str(),
              percent(result.ml_reduction).c_str(),
              percent(result.total_reduction()).c_str());

  std::vector<std::pair<std::string,
                        std::array<double, inject::kNumOutcomes>>>
      rows;
  for (auto kind : core::kinds_present(result.measured)) {
    rows.emplace_back(mpi::to_string(kind),
                      core::outcome_distribution(result.measured, kind));
  }
  rows.emplace_back("ALL", core::outcome_distribution(result.measured));
  std::printf("%s\n", core::render_outcome_table(rows).c_str());
  std::printf("%s", core::render_health(result.health).c_str());

  // Always-on stderr report: outcome totals + health, telemetry or not —
  // a campaign's counts must never be only an exit code.
  std::fprintf(stderr, "%s%s",
               core::render_outcome_totals(result.measured).c_str(),
               core::render_health(result.health).c_str());

  if (telemetry_on) {
    if (!trace_out.empty()) {
      const auto trace = telemetry::to_chrome_trace(
          recorder.drain_events(), recorder.bound_threads());
      if (telemetry::write_text_file(trace_out, trace)) {
        std::printf("wrote %s\n", trace_out.c_str());
      } else {
        std::fprintf(stderr, "error: failed to write trace: %s\n",
                     trace_out.c_str());
      }
    }
    if (!metrics_out.empty()) {
      const auto snapshot = recorder.metrics();
      const bool json = metrics_out.size() >= 5 &&
                        metrics_out.rfind(".json") == metrics_out.size() - 5;
      const auto text = json ? telemetry::to_metrics_json(snapshot)
                             : telemetry::to_prometheus(snapshot);
      if (telemetry::write_text_file(metrics_out, text)) {
        std::printf("wrote %s\n", metrics_out.c_str());
      } else {
        std::fprintf(stderr, "error: failed to write metrics: %s\n",
                     metrics_out.c_str());
      }
    }
  }

  if (args.has("csv")) {
    core::write_file(args.get("csv", ""), core::to_csv(result.measured));
    std::printf("wrote %s\n", args.get("csv", "").c_str());
  }
  if (args.has("json")) {
    core::write_file(args.get("json", ""), core::to_json(result));
    std::printf("wrote %s\n", args.get("json", "").c_str());
  }
  return result.health.clean() ? 0 : 2;
}

int cmd_p2p(const std::string& workload_name, const Args& args) {
  const auto workload = apps::make_workload(workload_name);
  core::CampaignOptions options;
  options.nranks = std::atoi(args.get("ranks", "16").c_str());
  options.trials_per_point =
      static_cast<std::uint32_t>(std::atoi(args.get("trials", "8").c_str()));
  core::Campaign campaign(*workload, options);
  campaign.profile();

  const auto e = core::enumerate_p2p_points(campaign.profiler());
  std::printf("p2p exploration space: %llu -> %llu (semantic) -> %llu "
              "(context)\n",
              static_cast<unsigned long long>(e.stats.total_points),
              static_cast<unsigned long long>(e.stats.after_semantic),
              static_cast<unsigned long long>(e.stats.after_context));
  if (e.points.empty()) {
    std::printf("%s uses no point-to-point communication\n",
                workload_name.c_str());
    return 0;
  }
  auto points = e.points;
  const auto cap = static_cast<std::size_t>(
      std::atoi(args.get("points", "60").c_str()));
  if (points.size() > cap) points.resize(cap);
  std::vector<core::P2pPointResult> results;
  for (const auto& point : points) {
    results.push_back(
        core::measure_p2p(campaign, point, options.trials_per_point));
  }
  std::vector<std::pair<std::string,
                        std::array<double, inject::kNumOutcomes>>>
      rows;
  for (auto param : {mpi::P2pParam::Buffer, mpi::P2pParam::Count,
                     mpi::P2pParam::Datatype, mpi::P2pParam::Peer,
                     mpi::P2pParam::Tag}) {
    rows.emplace_back(
        to_string(param),
        core::p2p_outcome_distribution(results, std::nullopt, param));
  }
  std::printf("%s", core::render_outcome_table(rows).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "list") return cmd_list();
    if (command == "profile" || command == "study" || command == "p2p") {
      if (argc < 3) return usage();
      Args args;
      if (!args.parse(argc, argv, 3)) return usage();
      if (command == "profile") return cmd_profile(argv[2], args);
      if (command == "p2p") return cmd_p2p(argv[2], args);
      return cmd_study(argv[2], args);
    }
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return usage();
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Internal failures inside trials are retried and quarantined by the
    // campaign itself (exit 2 via cmd_study); anything that escapes to
    // here is fatal.
    std::fprintf(stderr, "execution failed: %s\n", e.what());
    return 1;
  }
}

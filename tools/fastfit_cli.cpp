// fastfit — the command-line front end of the tool.
//
//   fastfit list
//       Bundled workloads, prediction models, fault models.
//
//   fastfit profile <workload> [--ranks N] [--save FILE]
//       Phase 1 only: golden + profiling run, the mpiP-style
//       communication report, and the pruning statistics. --save persists
//       the enumeration (profiling is a one-time cost; Sec IV-B).
//
//   fastfit study <workload> [--ranks N] [--trials T] [--threshold X]
//                 [--fault-models LIST] [--repair on|off] [--no-ml]
//                 [--csv FILE] [--json FILE] [--resume] [--fragment FILE]
//                 [+ the study knobs listed by --help]
//       --fault-models takes comma-separated model[@trigger[=param]]
//       specs (see `fastfit list` and docs/fault_models.md); --repair
//       enables ULFM-style shrink-and-continue after fail-stop death.
//       The full three-phase sensitivity study, with optional CSV/JSON
//       export of the results. Every study knob exists twice — as a
//       --flag and as a FASTFIT_* environment variable — generated from
//       the single table in support/config (config_knobs()); flags win.
//       --journal records every completed trial in a durable journal;
//       --resume continues a killed campaign from it, bit-identically
//       (docs/resilience.md). --passes selects and orders the pruning
//       chain (docs/pipeline.md); --shard i/N runs one deterministic
//       shard of the study and --fragment persists its result for
//       `fastfit merge`. Telemetry sinks are described in
//       docs/observability.md. Independent of telemetry, every study
//       prints the per-outcome trial totals and the campaign health
//       table on stderr.
//
//   fastfit merge [--json FILE] [--csv FILE] [--metrics-out FILE]
//                 FRAGMENT...
//       Merges the --fragment files of a complete sharded study back
//       into one report, bit-identical to the unsharded run (same JSON,
//       same trial counters; docs/pipeline.md). Validates that the
//       fragments belong to one campaign and tile it exactly.
//
//   fastfit p2p <workload> [--ranks N] [--trials T] [--points K]
//                [--fault-models LIST]
//       The point-to-point extension study (Sec VIII future work):
//       pruning statistics and per-parameter response distributions for
//       the workload's send/recv calls. Only parameter-mutation fault
//       models apply; anything else is rejected at parse time with the
//       supported families listed.
//
// Exit codes: 0 clean success, 2 study completed but unhealthy —
// quarantined points (results are partial for those points) or rank
// threads still leaked in quarantine after the final reap, 1 fatal
// (usage or execution error).

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/export.hpp"
#include "inject/fault_model.hpp"
#include "core/fastfit.hpp"
#include "core/p2p_study.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/shard.hpp"
#include "ml/classifier.hpp"
#include "profile/queries.hpp"
#include "stats/levels.hpp"
#include "support/config.hpp"
#include "support/format.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/progress_meter.hpp"
#include "telemetry/recorder.hpp"

using namespace fastfit;

namespace {

/// The full usage text. The study-knob section is rendered from
/// config_knobs() — the same table from_environment() reads — so the
/// flag and environment-variable views cannot drift apart.
std::string usage_text() {
  std::string text =
      "usage:\n"
      "  fastfit list\n"
      "  fastfit profile <workload> [--ranks N] [--save FILE]\n"
      "                  [--passes LIST]\n"
      "  fastfit study <workload> [--ranks N] [--trials T]\n"
      "                [--threshold X] [--fault-models LIST]\n"
      "                [--repair on|off] [--no-ml]\n"
      "                [--csv FILE] [--json FILE] [--resume]\n"
      "                [--fragment FILE] [study knobs below]\n"
      "  fastfit merge [--json FILE] [--csv FILE] [--metrics-out FILE]\n"
      "                FRAGMENT...\n"
      "  fastfit p2p <workload> [--ranks N] [--trials T] [--points K]\n"
      "              [--fault-models LIST]  (parameter models only)\n"
      "\n"
      "study knobs (each --flag has an environment-variable alias;\n"
      "flags win):\n";
  for (const auto& knob : config_knobs()) {
    std::string left = "  ";
    if (knob.flag[0] != '\0') {
      left += "--";
      left += knob.flag;
      if (knob.arg[0] != '\0') {
        left += ' ';
        left += knob.arg;
      }
      left += "  (";
      left += knob.env;
      left += ')';
    } else {
      // Table II variables are environment-only, like the original tool.
      left += knob.env;
      if (knob.arg[0] != '\0') {
        left += '=';
        left += knob.arg;
      }
      left += "  (env only)";
    }
    constexpr std::size_t kHelpColumn = 48;
    if (left.size() < kHelpColumn) {
      left.resize(kHelpColumn, ' ');
    } else {
      left += ' ';
    }
    text += left;
    text += knob.help;
    text += '\n';
  }
  return text;
}

int usage() {
  std::fprintf(stderr, "%s", usage_text().c_str());
  return 1;
}

/// Minimal flag parser: --key value pairs plus boolean switches.
struct Args {
  std::map<std::string, std::string> values;
  bool parse(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) return false;
      key = key.substr(2);
      if (key == "no-ml" || key == "resume" || key == "progress") {
        values[key] = "1";
      } else {
        if (i + 1 >= argc) return false;
        values[key] = argv[++i];
      }
    }
    return true;
  }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  bool has(const std::string& key) const { return values.count(key) > 0; }
};

/// Validates --parallel-trials through the InjectionConfig parser (same
/// rules as the FASTFIT_PARALLEL_TRIALS environment variable).
std::size_t parse_parallel_trials(const std::string& value) {
  const auto cfg =
      InjectionConfig::from_map({{"FASTFIT_PARALLEL_TRIALS", value}});
  return static_cast<std::size_t>(cfg.parallel_trials);
}

/// --repair on|off (also accepts the knob table's 0|1).
bool parse_repair(const std::string& value) {
  if (value == "on" || value == "1") return true;
  if (value == "off" || value == "0") return false;
  throw ConfigError("--repair: expected on|off, got '" + value + "'");
}

int cmd_list() {
  std::printf("workloads:      %s\n",
              join(apps::workload_names(), ", ").c_str());
  std::printf("models:         %s\n",
              join(ml::classifier_names(), ", ").c_str());
  std::string fault_models;
  for (std::size_t m = 0; m < inject::kNumFaultModels; ++m) {
    if (m) fault_models += ", ";
    fault_models += to_string(static_cast<inject::FaultModel>(m));
  }
  std::printf("fault models:   %s\n", fault_models.c_str());
  std::string triggers;
  for (std::size_t t = 0; t < inject::kNumFaultTriggers; ++t) {
    if (t) triggers += ", ";
    triggers += to_string(static_cast<inject::FaultTrigger>(t));
  }
  std::printf("fault triggers: %s  (spec: model[@trigger[=param]])\n",
              triggers.c_str());
  return 0;
}

/// Resolves the pruning-pass chain from --passes / FASTFIT_PASSES
/// (flag wins). Empty result = the default chain.
std::vector<std::string> resolve_passes(const Args& args,
                                        const InjectionConfig& env) {
  std::string passes = env.passes;
  if (args.has("passes")) passes = args.get("passes", "");
  if (passes.empty()) return {};
  return core::parse_pass_list(passes);
}

int cmd_profile(const std::string& workload_name, const Args& args) {
  const auto workload = apps::make_workload(workload_name);
  core::StudyOptions options;
  options.campaign.nranks = std::atoi(args.get("ranks", "16").c_str());
  options.use_ml = false;
  options.passes = resolve_passes(args, InjectionConfig::from_environment());
  core::StudyDriver driver(*workload, std::move(options));
  driver.profile();
  auto& campaign = driver.campaign();

  std::printf("%s\n", profile::mpip_report(campaign.profiler()).c_str());
  const auto& s = campaign.stats();
  std::printf("equivalence classes: %zu of %d ranks\n",
              s.equivalence_classes, s.nranks);
  std::printf("injection points:    %llu total -> %llu after semantic "
              "pruning (%s) -> %llu after context pruning (%s)\n",
              static_cast<unsigned long long>(s.total_points),
              static_cast<unsigned long long>(s.after_semantic),
              percent(s.semantic_reduction()).c_str(),
              static_cast<unsigned long long>(s.after_context),
              percent(s.context_reduction()).c_str());
  if (args.has("save")) {
    core::write_file(args.get("save", ""),
                     core::to_text(campaign.enumeration()));
    std::printf("saved enumeration to %s\n", args.get("save", "").c_str());
  }
  return 0;
}

int cmd_study(const std::string& workload_name, const Args& args) {
  const auto workload = apps::make_workload(workload_name);
  core::FastFitOptions options;
  options.campaign.nranks = std::atoi(args.get("ranks", "16").c_str());
  options.campaign.trials_per_point =
      static_cast<std::uint32_t>(std::atoi(args.get("trials", "12").c_str()));
  options.campaign.seed =
      std::strtoull(args.get("seed", "258398418711").c_str(), nullptr, 10);
  options.use_ml = !args.has("no-ml");
  options.ml.accuracy_threshold =
      std::atof(args.get("threshold", "0.65").c_str());
  if (args.has("parallel-trials")) {
    options.campaign.max_parallel_trials =
        parse_parallel_trials(args.get("parallel-trials", "0"));
  }

  // Resilience knobs: flags override the FASTFIT_* environment (both are
  // validated by the InjectionConfig parser, so limits match).
  const auto env = InjectionConfig::from_environment();

  // Fault-model axis: --fault-models takes a comma-separated spec list;
  // --fault-model remains as the single-model spelling. Empty = the
  // default exact-point single bit flip (pre-v2 behaviour, byte for
  // byte).
  std::string fault_models = env.fault_models;
  if (args.has("fault-model")) fault_models = args.get("fault-model", "");
  if (args.has("fault-models")) fault_models = args.get("fault-models", "");
  if (!fault_models.empty()) {
    options.campaign.fault_models = inject::parse_fault_models(fault_models);
  }
  options.campaign.repair = env.repair;
  if (args.has("repair")) {
    options.campaign.repair = parse_repair(args.get("repair", "off"));
  }

  // Trial isolation backend: thread (default, in-process) or process
  // (fork-server workers — required for the real-signal fault models,
  // which Campaign enforces at construction).
  std::string isolation = env.isolation;
  if (args.has("isolation")) {
    isolation = InjectionConfig::from_map(
                    {{"FASTFIT_ISOLATION", args.get("isolation", "thread")}})
                    .isolation;
  }
  options.campaign.isolation = core::parse_isolation_mode(isolation);

  // World engine: resumable rank fibers (default) or thread-per-rank.
  // Same validation path as the other text knobs; results are identical
  // on both, so this is purely a substrate/wall-clock choice.
  std::string world_engine = env.world_engine;
  if (args.has("world-engine")) {
    world_engine =
        InjectionConfig::from_map(
            {{"FASTFIT_WORLD_ENGINE", args.get("world-engine", "fibers")}})
            .world_engine;
  }
  options.campaign.engine = mpi::parse_world_engine(world_engine);

  options.journal = env.journal;
  options.campaign.max_trial_retries =
      static_cast<std::uint32_t>(env.max_trial_retries);
  options.campaign.watchdog_escalation =
      static_cast<std::uint32_t>(env.watchdog_escalation);
  if (args.has("journal")) options.journal = args.get("journal", "");
  if (args.has("max-trial-retries")) {
    options.campaign.max_trial_retries = static_cast<std::uint32_t>(
        InjectionConfig::from_map({{"FASTFIT_MAX_TRIAL_RETRIES",
                                    args.get("max-trial-retries", "2")}})
            .max_trial_retries);
  }
  if (args.has("watchdog-escalation")) {
    options.campaign.watchdog_escalation = static_cast<std::uint32_t>(
        InjectionConfig::from_map({{"FASTFIT_WATCHDOG_ESCALATION",
                                    args.get("watchdog-escalation", "4")}})
            .watchdog_escalation);
  }
  options.campaign.deterministic_hang_detection = env.hang_detection;
  options.campaign.max_leaked_threads =
      static_cast<std::size_t>(env.max_leaked_threads);
  if (args.has("hang-detection")) {
    options.campaign.deterministic_hang_detection =
        InjectionConfig::from_map(
            {{"FASTFIT_HANG_DETECTION", args.get("hang-detection", "1")}})
            .hang_detection;
  }
  if (args.has("max-leaked-threads")) {
    options.campaign.max_leaked_threads = static_cast<std::size_t>(
        InjectionConfig::from_map({{"FASTFIT_MAX_LEAKED_THREADS",
                                    args.get("max-leaked-threads", "8")}})
            .max_leaked_threads);
  }
  options.resume = args.has("resume");
  if (options.resume && options.journal.empty()) {
    throw ConfigError("--resume requires --journal (or FASTFIT_JOURNAL)");
  }

  // Prefix-replay snapshots: the mode knob and the LRU budget.
  std::string snapshots = env.snapshots;
  if (args.has("snapshots")) snapshots = args.get("snapshots", "auto");
  options.campaign.snapshots = core::parse_snapshot_mode(snapshots);
  options.campaign.snapshot_cache_mb = env.snapshot_cache_mb;
  if (args.has("snapshot-cache-mb")) {
    options.campaign.snapshot_cache_mb =
        InjectionConfig::from_map({{"FASTFIT_SNAPSHOT_CACHE_MB",
                                    args.get("snapshot-cache-mb", "256")}})
            .snapshot_cache_mb;
  }
  options.campaign.recording_path = env.snapshot_recording;
  if (args.has("snapshot-recording")) {
    options.campaign.recording_path =
        InjectionConfig::from_map({{"FASTFIT_SNAPSHOT_RECORDING",
                                    args.get("snapshot-recording", "")}})
            .snapshot_recording;
  }

  // Pipeline selection: the pruning chain and the deterministic shard.
  options.passes = resolve_passes(args, env);
  std::string shard = env.shard;
  if (args.has("shard")) shard = args.get("shard", "");
  if (!shard.empty()) options.campaign.shard = core::parse_shard(shard);
  if (options.campaign.shard.sharded() && options.use_ml &&
      options.passes.empty()) {
    // A sharded study needs a static point set; rather than erroring on
    // the CLI's use_ml default, drop the ML stage the way --no-ml would.
    // An explicit "--passes ...,ml" together with --shard still errors.
    std::fprintf(stderr,
                 "note: --shard implies --no-ml (the ML stage resolves "
                 "points adaptively)\n");
    options.use_ml = false;
  }

  // Telemetry sinks: flags override the FASTFIT_* environment; any sink
  // enables the recorder (it is off — and free — otherwise).
  std::string trace_out = env.trace_out;
  std::string metrics_out = env.metrics_out;
  bool progress = env.progress;
  std::uint64_t metrics_interval_ms = env.metrics_interval_ms;
  if (args.has("trace-out")) trace_out = args.get("trace-out", "");
  if (args.has("metrics-out")) metrics_out = args.get("metrics-out", "");
  if (args.has("progress")) progress = true;
  if (args.has("metrics-interval-ms")) {
    metrics_interval_ms =
        InjectionConfig::from_map(
            {{"FASTFIT_METRICS_INTERVAL_MS",
              args.get("metrics-interval-ms", "0")}})
            .metrics_interval_ms;
  }
  const bool telemetry_on =
      !trace_out.empty() || !metrics_out.empty() || progress;
  auto& recorder = telemetry::Recorder::instance();
  std::unique_ptr<telemetry::ProgressMeter> meter;
  if (telemetry_on) {
    recorder.enable();
    telemetry::Recorder::bind_thread(telemetry::Track::Main, -1,
                                     "campaign-main");
    if (progress || (metrics_interval_ms > 0 && !metrics_out.empty())) {
      telemetry::ProgressMeter::Options meter_opts;
      meter_opts.live_line = progress;
      meter_opts.metrics_path = metrics_out;
      meter_opts.metrics_interval =
          std::chrono::milliseconds(metrics_interval_ms);
      meter = std::make_unique<telemetry::ProgressMeter>(meter_opts);
    }
  }

  core::FastFit study(*workload, options);
  const auto result = study.run();
  if (meter) meter->stop();

  const auto& s = result.stats;
  std::printf("pruning: %llu -> %llu (%s) -> %llu (%s); ML predicted %s; "
              "total reduction %s\n\n",
              static_cast<unsigned long long>(s.total_points),
              static_cast<unsigned long long>(s.after_semantic),
              percent(s.semantic_reduction()).c_str(),
              static_cast<unsigned long long>(s.after_context),
              percent(s.context_reduction()).c_str(),
              percent(result.ml_reduction).c_str(),
              percent(result.total_reduction()).c_str());

  std::vector<std::pair<std::string,
                        std::array<double, inject::kNumOutcomes>>>
      rows;
  for (auto kind : core::kinds_present(result.measured)) {
    rows.emplace_back(mpi::to_string(kind),
                      core::outcome_distribution(result.measured, kind));
  }
  rows.emplace_back("ALL", core::outcome_distribution(result.measured));
  std::printf("%s\n",
              core::render_outcome_table(rows, result.extended_outcomes)
                  .c_str());
  std::printf("%s", core::render_health(result.health).c_str());

  // Always-on stderr report: outcome totals + health, telemetry or not —
  // a campaign's counts must never be only an exit code.
  std::fprintf(stderr, "%s%s",
               core::render_outcome_totals(result.measured).c_str(),
               core::render_health(result.health).c_str());

  if (telemetry_on) {
    if (!trace_out.empty()) {
      const auto trace = telemetry::to_chrome_trace(
          recorder.drain_events(), recorder.bound_threads());
      if (telemetry::write_text_file(trace_out, trace)) {
        std::printf("wrote %s\n", trace_out.c_str());
      } else {
        std::fprintf(stderr, "error: failed to write trace: %s\n",
                     trace_out.c_str());
      }
    }
    if (!metrics_out.empty()) {
      const auto snapshot = recorder.metrics();
      const bool json = metrics_out.size() >= 5 &&
                        metrics_out.rfind(".json") == metrics_out.size() - 5;
      const auto text = json ? telemetry::to_metrics_json(snapshot)
                             : telemetry::to_prometheus(snapshot);
      if (telemetry::write_text_file(metrics_out, text)) {
        std::printf("wrote %s\n", metrics_out.c_str());
      } else {
        std::fprintf(stderr, "error: failed to write metrics: %s\n",
                     metrics_out.c_str());
      }
    }
  }

  if (args.has("csv")) {
    core::write_file(args.get("csv", ""),
                     core::to_csv(result.measured, result.extended_outcomes));
    std::printf("wrote %s\n", args.get("csv", "").c_str());
  }
  if (args.has("json")) {
    core::write_file(args.get("json", ""), core::to_json(result));
    std::printf("wrote %s\n", args.get("json", "").c_str());
  }
  if (args.has("fragment")) {
    core::write_file(args.get("fragment", ""),
                     core::to_shard_fragment(result));
    std::printf("wrote %s\n", args.get("fragment", "").c_str());
  }
  return result.health.clean() ? 0 : 2;
}

/// Reads a whole file, throwing ConfigError on I/O failure (the merge
/// counterpart of core::write_file).
std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("cannot read fragment: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw ConfigError("error reading fragment: " + path);
  }
  return buffer.str();
}

int cmd_merge(int argc, char** argv) {
  // Fragment paths are positional; Args only understands --key value
  // pairs, so parse the mix by hand.
  Args args;
  std::vector<std::string> paths;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      if (i + 1 >= argc) return usage();
      args.values[arg.substr(2)] = argv[++i];
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "error: merge needs at least one fragment file\n");
    return usage();
  }

  std::vector<std::string> fragments;
  fragments.reserve(paths.size());
  for (const auto& path : paths) fragments.push_back(read_text_file(path));
  const auto result = core::merge_fragments(fragments);

  const auto& s = result.stats;
  std::printf("merged %zu fragments: %llu -> %llu (%s) -> %llu (%s), "
              "%zu measured points\n\n",
              fragments.size(),
              static_cast<unsigned long long>(s.total_points),
              static_cast<unsigned long long>(s.after_semantic),
              percent(s.semantic_reduction()).c_str(),
              static_cast<unsigned long long>(s.after_context),
              percent(s.context_reduction()).c_str(),
              result.measured.size());
  std::vector<std::pair<std::string,
                        std::array<double, inject::kNumOutcomes>>>
      rows;
  for (auto kind : core::kinds_present(result.measured)) {
    rows.emplace_back(mpi::to_string(kind),
                      core::outcome_distribution(result.measured, kind));
  }
  rows.emplace_back("ALL", core::outcome_distribution(result.measured));
  std::printf("%s\n",
              core::render_outcome_table(rows, result.extended_outcomes)
                  .c_str());
  std::printf("%s", core::render_health(result.health).c_str());

  if (args.has("json")) {
    core::write_file(args.get("json", ""), core::to_json(result));
    std::printf("wrote %s\n", args.get("json", "").c_str());
  }
  if (args.has("csv")) {
    core::write_file(args.get("csv", ""),
                     core::to_csv(result.measured, result.extended_outcomes));
    std::printf("wrote %s\n", args.get("csv", "").c_str());
  }
  if (args.has("metrics-out")) {
    // Synthesize the trial counters a single-process run would have
    // reported, so merged metrics diff cleanly against an unsharded
    // run's snapshot. Same names, help, and labels as TelemetrySink.
    const std::string metrics_out = args.get("metrics-out", "");
    auto& recorder = telemetry::Recorder::instance();
    recorder.enable();
    std::array<std::uint64_t, inject::kNumOutcomes> totals{};
    for (const auto& point : result.measured) {
      for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
        totals[o] += point.counts[o];
      }
    }
    for (std::size_t o = 0;
         o < inject::active_outcomes(result.extended_outcomes); ++o) {
      const std::string labels =
          "outcome=\"" +
          std::string(inject::to_string(static_cast<inject::Outcome>(o))) +
          '"';
      recorder
          .counter("fastfit_trials_total",
                   "Trial outcomes recorded (incl. journal replays)", labels)
          .add(totals[o]);
    }
    if (result.health.replayed_trials > 0) {
      recorder
          .counter("fastfit_trials_replayed_total",
                   "Trials served from the journal")
          .add(result.health.replayed_trials);
    }
    if (result.health.quarantined_points > 0) {
      recorder
          .counter("fastfit_quarantined_points_total",
                   "Points the trial guard gave up on")
          .add(result.health.quarantined_points);
    }
    const auto snapshot = recorder.metrics();
    const bool json = metrics_out.size() >= 5 &&
                      metrics_out.rfind(".json") == metrics_out.size() - 5;
    const auto text = json ? telemetry::to_metrics_json(snapshot)
                           : telemetry::to_prometheus(snapshot);
    if (telemetry::write_text_file(metrics_out, text)) {
      std::printf("wrote %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "error: failed to write metrics: %s\n",
                   metrics_out.c_str());
    }
  }
  return result.health.clean() ? 0 : 2;
}

int cmd_p2p(const std::string& workload_name, const Args& args) {
  const auto workload = apps::make_workload(workload_name);
  core::StudyOptions options;
  options.campaign.nranks = std::atoi(args.get("ranks", "16").c_str());
  const auto trials =
      static_cast<std::uint32_t>(std::atoi(args.get("trials", "8").c_str()));
  options.campaign.trials_per_point = trials;
  options.use_ml = false;

  // Fail fast on the fault-model axis: the p2p injector only has
  // parameter manifestations, so reject anything else here at parse
  // time — with the supported families spelled out — instead of letting
  // measure_p2p throw mid-study after the profiling run.
  const auto env = InjectionConfig::from_environment();
  std::string fault_models = env.fault_models;
  if (args.has("fault-model")) fault_models = args.get("fault-model", "");
  if (args.has("fault-models")) fault_models = args.get("fault-models", "");
  if (!fault_models.empty()) {
    const auto specs = inject::parse_fault_models(fault_models);
    for (const auto& spec : specs) {
      if (!inject::is_parameter_model(spec.model)) {
        throw ConfigError(
            "p2p: fault model '" + spec.canonical() +
            "' has no point-to-point parameter manifestation; supported "
            "families: " +
            inject::parameter_fault_model_names());
      }
    }
    options.campaign.fault_models = specs;
  }

  core::StudyDriver driver(*workload, std::move(options));
  driver.profile();
  auto& campaign = driver.campaign();

  const auto e = core::enumerate_p2p_points(campaign.profiler());
  std::printf("p2p exploration space: %llu -> %llu (semantic) -> %llu "
              "(context)\n",
              static_cast<unsigned long long>(e.stats.total_points),
              static_cast<unsigned long long>(e.stats.after_semantic),
              static_cast<unsigned long long>(e.stats.after_context));
  if (e.points.empty()) {
    std::printf("%s uses no point-to-point communication\n",
                workload_name.c_str());
    return 0;
  }
  auto points = e.points;
  const auto cap = static_cast<std::size_t>(
      std::atoi(args.get("points", "60").c_str()));
  if (points.size() > cap) points.resize(cap);
  std::vector<core::P2pPointResult> results;
  for (const auto& point : points) {
    results.push_back(core::measure_p2p(campaign, point, trials));
  }
  std::vector<std::pair<std::string,
                        std::array<double, inject::kNumOutcomes>>>
      rows;
  for (auto param : {mpi::P2pParam::Buffer, mpi::P2pParam::Count,
                     mpi::P2pParam::Datatype, mpi::P2pParam::Peer,
                     mpi::P2pParam::Tag}) {
    rows.emplace_back(
        to_string(param),
        core::p2p_outcome_distribution(results, std::nullopt, param));
  }
  std::printf("%s", core::render_outcome_table(rows).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "--help" || command == "-h" || command == "help") {
      std::printf("%s", usage_text().c_str());
      return 0;
    }
    if (command == "list") return cmd_list();
    if (command == "merge") return cmd_merge(argc, argv);
    if (command == "profile" || command == "study" || command == "p2p") {
      if (argc < 3) return usage();
      Args args;
      if (!args.parse(argc, argv, 3)) return usage();
      if (command == "profile") return cmd_profile(argv[2], args);
      if (command == "p2p") return cmd_p2p(argv[2], args);
      return cmd_study(argv[2], args);
    }
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return usage();
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Internal failures inside trials are retried and quarantined by the
    // campaign itself (exit 2 via cmd_study); anything that escapes to
    // here is fatal.
    std::fprintf(stderr, "execution failed: %s\n", e.what());
    return 1;
  }
}

#!/usr/bin/env python3
"""Validate FastFIT telemetry artifacts.

Checks three things (any subset, depending on the flags given):

  --trace trace.json      The Chrome trace-event document parses, every
                          event lane has thread_name metadata, spans have
                          ts/dur, and at least --min-tracks distinct track
                          types (main/executor/rank/monitor/ml/journal)
                          are present.
  --metrics metrics.prom  The Prometheus text exposition parses (HELP/
                          TYPE comments, sample lines, monotone histogram
                          buckets, +Inf == _count).
  --study study.json      Cross-check: the per-outcome sums of the study
                          report's measured[].counts equal the
                          fastfit_trials_total{outcome=...} counters in
                          the metrics file.
  --compare-counters other.prom --compare-family NAME
                          Cross-check two snapshots: the named family's
                          sample set (labels and values) in --metrics
                          must equal the one in the other file. Used by
                          the sharded-study CI job to prove that
                          `fastfit merge` reproduces the unsharded run's
                          trial counters exactly. Repeat --compare-family
                          to compare several families.

Exits non-zero with a message on the first violation. Used by the CI
telemetry job; runnable by hand after any `fastfit study --trace-out
--metrics-out` run.
"""

import argparse
import json
import re
import sys

# tid ranges assigned by telemetry/exporters.cpp (trace_tid).
TRACK_OF_TID = (
    (1, 1, "main"),
    (100, 999, "executor"),
    (1000, 2999, "rank"),
    (3000, 3999, "monitor"),
    (4000, 4499, "ml"),
    (4500, 4999, "journal"),
)


def fail(msg):
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def track_of(tid):
    for lo, hi, name in TRACK_OF_TID:
        if lo <= tid <= hi:
            return name
    return f"unknown({tid})"


def check_trace(path, min_tracks):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")

    named_tids = set()
    event_tids = set()
    spans = instants = 0
    for ev in events:
        ph = ev.get("ph")
        tid = ev.get("tid")
        if ph == "M":
            if ev.get("name") == "thread_name":
                if not ev.get("args", {}).get("name"):
                    fail(f"{path}: thread_name metadata without a name: {ev}")
                named_tids.add(tid)
            continue
        event_tids.add(tid)
        if ph == "X":
            spans += 1
            if not isinstance(ev.get("ts"), (int, float)):
                fail(f"{path}: X event without ts: {ev}")
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                fail(f"{path}: X event without non-negative dur: {ev}")
        elif ph == "i":
            if ev.get("s") != "t":
                fail(f"{path}: instant without thread scope: {ev}")
            instants += 1
        else:
            fail(f"{path}: unexpected phase {ph!r}: {ev}")

    unnamed = event_tids - named_tids
    if unnamed:
        fail(f"{path}: lanes without thread_name metadata: {sorted(unnamed)}")
    tracks = {track_of(tid) for tid in event_tids}
    if len(tracks) < min_tracks:
        fail(
            f"{path}: only {len(tracks)} track types {sorted(tracks)}, "
            f"need >= {min_tracks}"
        )
    if spans == 0:
        fail(f"{path}: no complete ('X') span events")
    print(
        f"check_telemetry: trace OK: {spans} spans, {instants} instants, "
        f"{len(event_tids)} lanes, tracks: {', '.join(sorted(tracks))}"
    )


SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)


def check_metrics(path):
    families = {}  # name -> type
    samples = {}  # (name, labels) -> float
    histogram_buckets = {}  # name -> [(le, cumulative)]
    help_seen = set()
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                fail(f"{path}:{lineno}: blank line")
            if line.startswith("# HELP "):
                name = line.split()[2]
                if name in help_seen:
                    fail(f"{path}:{lineno}: duplicate HELP for {name}")
                help_seen.add(name)
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if parts[3] not in ("counter", "gauge", "histogram"):
                    fail(f"{path}:{lineno}: bad type {parts[3]}")
                families[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                fail(f"{path}:{lineno}: unexpected comment {line!r}")
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"{path}:{lineno}: unparseable sample {line!r}")
            name, labels, raw = m.group("name", "labels", "value")
            try:
                value = float(raw)
            except ValueError:
                fail(f"{path}:{lineno}: bad value {raw!r}")
            family = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in families:
                    family = name[: -len(suffix)]
            if family not in families:
                fail(f"{path}:{lineno}: sample {name} without TYPE")
            samples[(name, labels or "")] = value
            if name.endswith("_bucket") and family in families:
                le = dict(
                    kv.split("=", 1) for kv in (labels or "").split(",")
                ).get("le", "").strip('"')
                histogram_buckets.setdefault(family, []).append((le, value))

    for family, buckets in histogram_buckets.items():
        prev = -1.0
        for le, cumulative in buckets:
            if cumulative < prev:
                fail(f"{path}: {family} bucket le={le} not monotone")
            prev = cumulative
        if buckets[-1][0] != "+Inf":
            fail(f"{path}: {family} buckets do not end at +Inf")
        count = samples.get((family + "_count", ""))
        if count is not None and buckets[-1][1] != count:
            fail(f"{path}: {family} +Inf bucket != _count")

    counters = len([n for n, t in families.items() if t == "counter"])
    print(
        f"check_telemetry: metrics OK: {len(families)} families "
        f"({counters} counters), {len(samples)} samples"
    )
    return samples


def check_totals(study_path, samples):
    with open(study_path, encoding="utf-8") as f:
        study = json.load(f)
    measured = study.get("measured")
    if not isinstance(measured, list) or not measured:
        fail(f"{study_path}: measured[] missing or empty")
    totals = {}
    for point in measured:
        for outcome, count in point["counts"].items():
            totals[outcome] = totals.get(outcome, 0) + count

    for outcome, expected in totals.items():
        got = samples.get(
            ("fastfit_trials_total", f'outcome="{outcome}"'), 0.0
        )
        if got != expected:
            fail(
                f"fastfit_trials_total{{outcome=\"{outcome}\"}} = {got}, "
                f"study reports {expected}"
            )
    metric_sum = sum(
        v
        for (name, _labels), v in samples.items()
        if name == "fastfit_trials_total"
    )
    if metric_sum != sum(totals.values()):
        fail(
            f"sum(fastfit_trials_total) = {metric_sum}, study total = "
            f"{sum(totals.values())}"
        )
    print(
        f"check_telemetry: totals OK: {int(metric_sum)} trials across "
        f"{len(totals)} outcomes match the study report"
    )


def family_samples(samples, family):
    return {
        (name, labels): value
        for (name, labels), value in samples.items()
        if name == family
    }


def check_compare(samples, other_path, families):
    other = check_metrics(other_path)
    for family in families:
        mine = family_samples(samples, family)
        theirs = family_samples(other, family)
        if not mine and not theirs:
            fail(f"{family}: absent from both snapshots")
        if mine != theirs:
            only_mine = sorted(set(mine) - set(theirs))
            only_theirs = sorted(set(theirs) - set(mine))
            diffs = sorted(
                k for k in set(mine) & set(theirs) if mine[k] != theirs[k]
            )
            fail(
                f"{family}: snapshots disagree "
                f"(only in --metrics: {only_mine}, "
                f"only in {other_path}: {only_theirs}, "
                f"differing values: {diffs})"
            )
        print(
            f"check_telemetry: compare OK: {family} identical "
            f"({len(mine)} samples)"
        )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace-event JSON to validate")
    ap.add_argument("--metrics", help="Prometheus exposition to validate")
    ap.add_argument(
        "--study", help="study --json report to cross-check totals against"
    )
    ap.add_argument(
        "--min-tracks",
        type=int,
        default=4,
        help="minimum distinct track types required in the trace",
    )
    ap.add_argument(
        "--compare-counters",
        help="second Prometheus snapshot to compare families against",
    )
    ap.add_argument(
        "--compare-family",
        action="append",
        default=[],
        help="metric family that must be identical in both snapshots "
        "(repeatable; default fastfit_trials_total)",
    )
    args = ap.parse_args()
    if not (args.trace or args.metrics):
        ap.error("nothing to do: pass --trace and/or --metrics")
    if args.study and not args.metrics:
        ap.error("--study needs --metrics to compare against")
    if args.compare_counters and not args.metrics:
        ap.error("--compare-counters needs --metrics to compare against")

    if args.trace:
        check_trace(args.trace, args.min_tracks)
    samples = check_metrics(args.metrics) if args.metrics else {}
    if args.study:
        check_totals(args.study, samples)
    if args.compare_counters:
        check_compare(
            samples,
            args.compare_counters,
            args.compare_family or ["fastfit_trials_total"],
        )
    print("check_telemetry: all checks passed")


if __name__ == "__main__":
    main()
